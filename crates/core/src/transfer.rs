//! Cross-scenario Q-table transfer.
//!
//! A Q-table learned for one scenario encodes which primitive chains are
//! cheap; a *similar* scenario (same network at another batch size, a
//! platform variant, a re-profiled LUT) shares most of that structure.
//! This module maps a donor table onto a recipient LUT's candidate
//! structure so a new search starts from the donor's knowledge instead of
//! from zero:
//!
//! 1. [`TransferMapping::between`] aligns the two scenarios' layers by
//!    type and depth and their candidates by primitive identity, and
//!    derives a Q-value rescale factor from the cost ratio of the shared
//!    candidates;
//! 2. [`QTable::transfer_from`] copies every donor-visited, mapped
//!    state-action value across (rescaled, with decayed visit counts so
//!    transferred knowledge yields to fresh evidence);
//! 3. [`QTable::from_best_path`] rebuilds a donor *policy-backbone* table
//!    from a cached plan — the service stores plans, not tables, so the
//!    donor's best assignment plus its per-layer costs reconstruct the
//!    interesting slice of the donor's Q-function (cost-to-go along the
//!    winning path).
//!
//! Every entry point is total: a mismatched donor (different depth,
//! disjoint candidate sets, stale artifacts) degrades to an empty mapping
//! or a zero-entry transfer, never a panic — callers fall back to a cold
//! search.

use qsdnn_engine::ScenarioDescriptor;

use crate::QTable;

/// Visit-count divisor applied to transferred entries: donor experience
/// arrives "decayed" so the recipient's own updates quickly dominate.
const VISIT_DECAY: u32 = 4;

/// Visit count assigned to entries rebuilt from a cached plan (see
/// [`QTable::from_best_path`]); decays to ≥ 1 under [`VISIT_DECAY`].
const BACKBONE_VISITS: u32 = 8;

/// Bounds on the Q rescale factor; a ratio outside this range means the
/// scenarios' cost scales are incomparable and rescaling would produce
/// garbage magnitudes.
const SCALE_BOUNDS: (f64, f64) = (1e-3, 1e3);

/// A structural alignment from a donor scenario onto a recipient: which
/// donor layer backs each recipient layer, which donor candidate backs
/// each recipient candidate, and how to rescale donor Q-values into the
/// recipient's cost units.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferMapping {
    /// For each recipient layer, the aligned donor layer (monotone in
    /// depth, matched by layer type).
    pub layer_map: Vec<Option<usize>>,
    /// For each recipient layer, recipient-candidate → donor-candidate
    /// (matched by primitive identity).
    pub candidate_map: Vec<Vec<Option<usize>>>,
    /// Multiplier taking donor Q-values (negated donor costs) to recipient
    /// cost units: the recipient/donor cost ratio over shared candidates.
    pub scale: f64,
}

impl TransferMapping {
    /// Aligns `donor` onto `recipient`.
    ///
    /// Layers align greedily in topological order: each recipient layer
    /// takes the next unconsumed donor layer of the same type, so
    /// same-network scenarios (the common batch-sweep case) align
    /// perfectly and an extra block in either network skips cleanly.
    /// Candidates align by exact primitive identity.
    pub fn between(donor: &ScenarioDescriptor, recipient: &ScenarioDescriptor) -> Self {
        let mut layer_map = Vec::with_capacity(recipient.layers.len());
        let mut candidate_map = Vec::with_capacity(recipient.layers.len());
        let mut cursor = 0usize;
        let mut shared_recipient_cost = 0.0;
        let mut shared_donor_cost = 0.0;
        for rl in &recipient.layers {
            let found = donor.layers[cursor..]
                .iter()
                .position(|dl| dl.tag == rl.tag)
                .map(|off| cursor + off);
            match found {
                Some(dl_idx) => {
                    cursor = dl_idx + 1;
                    let dl = &donor.layers[dl_idx];
                    let mut cands = Vec::with_capacity(rl.candidates.len());
                    for (ci, cand) in rl.candidates.iter().enumerate() {
                        let di = dl.candidates.iter().position(|d| d == cand);
                        if let Some(di) = di {
                            let (rc, dc) = (
                                rl.cost.get(ci).copied().unwrap_or(0.0),
                                dl.cost.get(di).copied().unwrap_or(0.0),
                            );
                            if rc.is_finite() && dc.is_finite() {
                                shared_recipient_cost += rc;
                                shared_donor_cost += dc;
                            }
                        }
                        cands.push(di);
                    }
                    layer_map.push(Some(dl_idx));
                    candidate_map.push(cands);
                }
                None => {
                    layer_map.push(None);
                    candidate_map.push(vec![None; rl.candidates.len()]);
                }
            }
        }
        let raw = if shared_donor_cost > 0.0 {
            shared_recipient_cost / shared_donor_cost
        } else {
            1.0
        };
        let scale = if raw.is_finite() && raw >= SCALE_BOUNDS.0 && raw <= SCALE_BOUNDS.1 {
            raw
        } else {
            1.0
        };
        TransferMapping {
            layer_map,
            candidate_map,
            scale,
        }
    }

    /// Upper bound on transferable Q-entries: mapped first-layer actions
    /// plus, for every *consecutively* aligned layer pair, the product of
    /// their mapped candidate counts. Zero means the mapping carries
    /// nothing and callers should search cold.
    pub fn mapped_states(&self) -> usize {
        let mapped = |l: usize| self.candidate_map[l].iter().flatten().count();
        let mut total = 0;
        for l in 0..self.layer_map.len() {
            let (Some(dl), here) = (self.layer_map[l], mapped(l)) else {
                continue;
            };
            if l == 0 {
                if dl == 0 {
                    total += here;
                }
            } else if self.layer_map[l - 1] == Some(dl.wrapping_sub(1)) && dl >= 1 {
                total += mapped(l - 1) * here;
            }
        }
        total
    }

    /// Whether the mapping transfers nothing (see
    /// [`TransferMapping::mapped_states`]).
    pub fn is_empty(&self) -> bool {
        self.mapped_states() == 0
    }
}

impl QTable {
    /// Rebuilds a donor *policy-backbone* table from a cached plan: along
    /// `assignment`, each `Q[(l, assignment[l-1]), assignment[l]]` is set
    /// to the negated cost-to-go `−Σ_{j≥l} step_cost[j]` — exactly the
    /// converged Q-value of the winning path under γ = 1 — with a modest
    /// visit count. Off-path entries stay unvisited.
    ///
    /// Returns `None` when the artifacts disagree (assignment length or
    /// candidate index out of range for `dims`, non-finite costs) — the
    /// stale-index case; callers then skip this donor.
    pub fn from_best_path(
        dims: &[usize],
        assignment: &[usize],
        step_costs: &[f64],
    ) -> Option<QTable> {
        if dims.is_empty()
            || assignment.len() != dims.len()
            || step_costs.len() != dims.len()
            || assignment.iter().zip(dims).any(|(&a, &n)| a >= n)
            || step_costs.iter().any(|c| !c.is_finite())
        {
            return None;
        }
        let mut q = QTable::with_dims(dims.to_vec());
        let mut cost_to_go = 0.0;
        for l in (0..dims.len()).rev() {
            cost_to_go += step_costs[l];
            let prev = if l == 0 { 0 } else { assignment[l - 1] };
            q.seed(l, prev, assignment[l], -cost_to_go, BACKBONE_VISITS);
        }
        Some(q)
    }

    /// Seeds this table from a donor via `mapping`: every donor-visited
    /// state-action pair whose layer *and* candidates map (with the
    /// previous layer aligned consecutively, so the donor transition is
    /// meaningful) is copied across, rescaled by `mapping.scale` and
    /// marked visited with a decayed count. Returns the number of entries
    /// transferred — 0 (e.g. for a fully mismatched donor) means the
    /// table is untouched and the caller should run cold.
    ///
    /// Total for arbitrary inputs: any index disagreement between `self`,
    /// `donor` and `mapping` skips the entry rather than panicking.
    pub fn transfer_from(&mut self, donor: &QTable, mapping: &TransferMapping) -> usize {
        if mapping.layer_map.len() != self.len() || mapping.candidate_map.len() != self.len() {
            return 0;
        }
        let mut transferred = 0usize;
        for l in 0..self.len() {
            let Some(dl) = mapping.layer_map[l] else {
                continue;
            };
            if dl >= donor.len() {
                continue;
            }
            let cands = &mapping.candidate_map[l];
            if cands.len() != self.arity(l) {
                continue;
            }
            if l == 0 {
                if dl != 0 {
                    continue;
                }
                for (a, da) in cands.iter().enumerate() {
                    let Some(da) = *da else { continue };
                    if da >= donor.arity(0) || !donor.visited(0, 0, da) {
                        continue;
                    }
                    let visits = (donor.visits(0, 0, da) / VISIT_DECAY).max(1);
                    self.seed(0, 0, a, donor.get(0, 0, da) * mapping.scale, visits);
                    transferred += 1;
                }
                continue;
            }
            // A donor transition (dl−1 → dl) only matches when the
            // recipient's previous layer aligns to exactly dl−1.
            if dl == 0 || mapping.layer_map[l - 1] != Some(dl - 1) {
                continue;
            }
            let prev_cands = &mapping.candidate_map[l - 1];
            if prev_cands.len() != self.arity(l - 1) {
                continue;
            }
            for (p, dp) in prev_cands.iter().enumerate() {
                let Some(dp) = *dp else { continue };
                if dp >= donor.arity(dl - 1) {
                    continue;
                }
                for (a, da) in cands.iter().enumerate() {
                    let Some(da) = *da else { continue };
                    if da >= donor.arity(dl) || !donor.visited(dl, dp, da) {
                        continue;
                    }
                    let visits = (donor.visits(dl, dp, da) / VISIT_DECAY).max(1);
                    self.seed(l, p, a, donor.get(dl, dp, da) * mapping.scale, visits);
                    transferred += 1;
                }
            }
        }
        transferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_engine::{toy, ScenarioDescriptor};

    #[test]
    fn identity_mapping_is_total_with_unit_scale() {
        let desc = ScenarioDescriptor::of(&toy::small_chain_lut());
        let m = TransferMapping::between(&desc, &desc);
        assert!(m.layer_map.iter().enumerate().all(|(i, d)| *d == Some(i)));
        for row in &m.candidate_map {
            assert!(row.iter().enumerate().all(|(i, d)| *d == Some(i)));
        }
        assert!((m.scale - 1.0).abs() < 1e-12);
        assert!(!m.is_empty());
    }

    #[test]
    fn unrelated_structures_map_to_nothing_useful() {
        // fig1's layers are all conv; a descriptor with disjoint candidate
        // sets still aligns layers by tag but maps no candidates.
        let donor = ScenarioDescriptor::of(&toy::fig1_lut());
        let mut recipient = donor.clone();
        for layer in &mut recipient.layers {
            for cand in &mut layer.candidates {
                cand.library = qsdnn_primitives::Library::Sparse;
            }
        }
        let m = TransferMapping::between(&donor, &recipient);
        assert!(m.is_empty(), "disjoint candidate sets transfer nothing");
    }

    #[test]
    fn scale_tracks_the_cost_ratio() {
        let donor = ScenarioDescriptor::of(&toy::small_chain_lut());
        let mut recipient = donor.clone();
        for layer in &mut recipient.layers {
            for c in &mut layer.cost {
                *c *= 3.0;
            }
        }
        let m = TransferMapping::between(&donor, &recipient);
        assert!((m.scale - 3.0).abs() < 1e-9, "scale {} != 3", m.scale);
    }

    #[test]
    fn transfer_round_trips_through_identity() {
        let lut = toy::small_chain_lut();
        let desc = ScenarioDescriptor::of(&lut);
        let mapping = TransferMapping::between(&desc, &desc);
        let mut donor = QTable::new(&lut);
        donor.set(0, 0, 2, -1.5);
        donor.set(1, 2, 1, -4.0);
        donor.set(4, 0, 0, -0.25);
        let mut recipient = QTable::new(&lut);
        let n = recipient.transfer_from(&donor, &mapping);
        assert_eq!(n, 3);
        assert_eq!(recipient.get(0, 0, 2), -1.5);
        assert_eq!(recipient.get(1, 2, 1), -4.0);
        assert_eq!(recipient.get(4, 0, 0), -0.25);
        assert!(recipient.visited(1, 2, 1));
        assert!(
            !recipient.visited(1, 0, 1),
            "unvisited donor states stay cold"
        );
    }

    #[test]
    fn transfer_never_panics_on_corrupt_mappings() {
        let lut = toy::small_chain_lut();
        let mut recipient = QTable::new(&lut);
        let donor = QTable::new(&toy::fig1_lut());
        // Wrong arities, out-of-range layers and candidates everywhere.
        let corrupt = TransferMapping {
            layer_map: vec![Some(7), None, Some(0), Some(1), Some(99)],
            candidate_map: vec![
                vec![Some(42); 3],
                vec![],
                vec![Some(0), None, Some(9)],
                vec![Some(1); 3],
                vec![Some(0); 17],
            ],
            scale: 1.0,
        };
        assert_eq!(recipient.transfer_from(&donor, &corrupt), 0);
        // Length-mismatched mapping is rejected wholesale.
        let short = TransferMapping {
            layer_map: vec![Some(0)],
            candidate_map: vec![vec![Some(0); 3]],
            scale: 1.0,
        };
        assert_eq!(recipient.transfer_from(&donor, &short), 0);
    }

    #[test]
    fn best_path_backbone_rolls_out_the_assignment() {
        let lut = toy::small_chain_lut();
        let dims: Vec<usize> = (0..lut.len()).map(|l| lut.candidates(l).len()).collect();
        let assignment = vec![2, 1, 0, 2, 1];
        let costs = vec![1.0, 2.0, 0.5, 0.25, 4.0];
        let q = QTable::from_best_path(&dims, &assignment, &costs).expect("consistent");
        assert_eq!(q.greedy_rollout(), assignment);
        // Q at the path head is the full negated cost.
        assert!((q.get(0, 0, 2) + 7.75).abs() < 1e-12);
        // Terminal Q is just the last step.
        assert!((q.get(4, 2, 1) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn best_path_rejects_inconsistent_artifacts() {
        assert!(QTable::from_best_path(&[3, 3], &[0, 1, 2], &[1.0, 1.0]).is_none());
        assert!(QTable::from_best_path(&[3, 3], &[0, 5], &[1.0, 1.0]).is_none());
        assert!(QTable::from_best_path(&[3, 3], &[0, 1], &[1.0, f64::NAN]).is_none());
        assert!(QTable::from_best_path(&[], &[], &[]).is_none());
    }

    #[test]
    fn batch_variant_descriptors_transfer_fully() {
        // Same structure, scaled costs — the batch-sweep shape.
        let donor_lut = toy::small_chain_lut();
        let donor = ScenarioDescriptor::of(&donor_lut).with_batch(1);
        let mut recipient = ScenarioDescriptor::of(&donor_lut).with_batch(4);
        for layer in &mut recipient.layers {
            for c in &mut layer.cost {
                *c *= 4.0;
            }
        }
        let m = TransferMapping::between(&donor, &recipient);
        let dims: Vec<usize> = (0..donor_lut.len())
            .map(|l| donor_lut.candidates(l).len())
            .collect();
        let full: usize = dims[0] + dims.windows(2).map(|w| w[0] * w[1]).sum::<usize>();
        assert_eq!(m.mapped_states(), full, "every state maps");
        assert!((m.scale - 4.0).abs() < 1e-9);
    }
}
