//! Synthetic layer weights.
//!
//! Latency of every kernel here is data-independent, so weights are seeded
//! pseudo-random values (see DESIGN.md §2). Sparsity is applied **at
//! generation time** — a fraction `1 - density` of weights is zeroed — so
//! dense and sparse kernels compute *the same function* and can be
//! cross-checked element-wise.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qsdnn_nn::{LayerKind, Node};
use qsdnn_tensor::Shape;

/// Weights/parameters of one layer in canonical dense storage.
///
/// Layouts: convolution `[OC][IC][KH][KW]`, depth-wise `[C][KH][KW]`,
/// FC `[OUT][IN]` (all row-major), plus per-channel `bias`, batch-norm
/// `scale`/`shift`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayerWeights {
    /// Main weight tensor (empty for parameter-free layers).
    pub w: Vec<f32>,
    /// Bias vector (empty if the layer has none).
    pub bias: Vec<f32>,
    /// Batch-norm scale (empty unless BatchNorm).
    pub scale: Vec<f32>,
    /// Batch-norm shift (empty unless BatchNorm).
    pub shift: Vec<f32>,
}

impl LayerWeights {
    /// True if the layer carries no parameters.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty() && self.bias.is_empty() && self.scale.is_empty() && self.shift.is_empty()
    }
}

fn dense(rng: &mut SmallRng, len: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-scale..scale)).collect()
}

fn sparse(rng: &mut SmallRng, len: usize, scale: f32, density: f32) -> Vec<f32> {
    (0..len)
        .map(|_| {
            let v = rng.gen_range(-scale..scale);
            if rng.gen_range(0.0f32..1.0) < density {
                v
            } else {
                0.0
            }
        })
        .collect()
}

/// Generates deterministic weights for `node` given its input shapes.
///
/// The same `(node, seed)` pair always produces identical weights, so every
/// primitive implementing the layer computes the same function. Weight
/// magnitudes are scaled by fan-in to keep activations in range across deep
/// networks.
pub fn generate(node: &Node, in_shapes: &[Shape], seed: u64) -> LayerWeights {
    let mut rng = SmallRng::seed_from_u64(seed ^ (node.id.0 as u64).wrapping_mul(0x9E37_79B9));
    match &node.desc.kind {
        LayerKind::Conv(p) => {
            let in_c = in_shapes[0].c;
            let fan_in = (in_c * p.kernel.0 * p.kernel.1) as f32;
            let scale = (2.0 / fan_in).sqrt();
            let len = p.out_channels * in_c * p.kernel.0 * p.kernel.1;
            LayerWeights {
                w: sparse(&mut rng, len, scale, p.weight_density),
                bias: if p.bias {
                    dense(&mut rng, p.out_channels, 0.1)
                } else {
                    Vec::new()
                },
                ..Default::default()
            }
        }
        LayerKind::DepthwiseConv(p) => {
            let c = in_shapes[0].c;
            let fan_in = (p.kernel.0 * p.kernel.1) as f32;
            let scale = (2.0 / fan_in).sqrt();
            LayerWeights {
                w: sparse(
                    &mut rng,
                    c * p.kernel.0 * p.kernel.1,
                    scale,
                    p.weight_density,
                ),
                bias: if p.bias {
                    dense(&mut rng, c, 0.1)
                } else {
                    Vec::new()
                },
                ..Default::default()
            }
        }
        LayerKind::Fc(p) => {
            let in_features = in_shapes[0].volume() / in_shapes[0].n.max(1);
            let scale = (2.0 / in_features as f32).sqrt();
            LayerWeights {
                w: sparse(
                    &mut rng,
                    p.out_features * in_features,
                    scale,
                    p.weight_density,
                ),
                bias: if p.bias {
                    dense(&mut rng, p.out_features, 0.1)
                } else {
                    Vec::new()
                },
                ..Default::default()
            }
        }
        LayerKind::BatchNorm => {
            let c = in_shapes[0].c;
            LayerWeights {
                scale: (0..c).map(|_| rng.gen_range(0.5f32..1.5)).collect(),
                shift: dense(&mut rng, c, 0.1),
                ..Default::default()
            }
        }
        _ => LayerWeights::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_nn::{ConvParams, FcParams, NetworkBuilder};
    use qsdnn_tensor::Shape;

    fn conv_net(density: f32) -> qsdnn_nn::Network {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 4, 8, 8));
        b.conv("c", x, ConvParams::square(8, 3, 1, 1).with_density(density))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let net = conv_net(1.0);
        let node = &net.layers()[1];
        let shapes = net.input_shapes(node.id);
        assert_eq!(generate(node, &shapes, 7), generate(node, &shapes, 7));
        assert_ne!(generate(node, &shapes, 7).w, generate(node, &shapes, 8).w);
    }

    #[test]
    fn density_controls_zero_fraction() {
        let net = conv_net(0.25);
        let node = &net.layers()[1];
        let w = generate(node, &net.input_shapes(node.id), 1).w;
        let nz = w.iter().filter(|&&v| v != 0.0).count() as f32 / w.len() as f32;
        assert!((nz - 0.25).abs() < 0.08, "non-zero fraction {nz}");
    }

    #[test]
    fn conv_weight_count() {
        let net = conv_net(1.0);
        let node = &net.layers()[1];
        let lw = generate(node, &net.input_shapes(node.id), 1);
        assert_eq!(lw.w.len(), 8 * 4 * 9);
        assert_eq!(lw.bias.len(), 8);
    }

    #[test]
    fn fc_and_bn_weights() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 4, 2, 2));
        let f = b.fc("fc", x, FcParams::new(5)).unwrap();
        b.batch_norm("bn", f);
        let net = b.build().unwrap();
        let fc = generate(&net.layers()[1], &net.input_shapes(qsdnn_nn::LayerId(1)), 1);
        assert_eq!(fc.w.len(), 5 * 16);
        let bn = generate(&net.layers()[2], &net.input_shapes(qsdnn_nn::LayerId(2)), 1);
        assert_eq!(bn.scale.len(), 5);
        assert_eq!(bn.shift.len(), 5);
        assert!(bn.w.is_empty());
    }

    #[test]
    fn parameter_free_layers_are_empty() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 4, 2, 2));
        b.relu("r", x);
        let net = b.build().unwrap();
        assert!(generate(&net.layers()[1], &net.input_shapes(qsdnn_nn::LayerId(1)), 1).is_empty());
    }
}
