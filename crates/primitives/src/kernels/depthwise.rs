//! Depth-wise convolution kernels.

use qsdnn_nn::ConvParams;
use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// Vanilla depth-wise convolution: accessor-based loops, any input layout,
/// output in `out_layout`. Weights are `[C][KH][KW]`.
pub fn depthwise_vanilla(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
    out_layout: DataLayout,
) -> Tensor {
    let in_s = input.shape();
    let (kh, kw) = p.kernel;
    let (sh, sw) = p.stride;
    let (ph, pw) = p.pad;
    let mut out = Tensor::zeros(out_shape, out_layout);
    for n in 0..out_shape.n {
        for c in 0..out_shape.c {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    let mut acc = if bias.is_empty() { 0.0 } else { bias[c] };
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy >= in_s.h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix < 0 || ix >= in_s.w as isize {
                                continue;
                            }
                            acc += w[(c * kh + ky) * kw + kx]
                                * input.at(n, c, iy as usize, ix as usize);
                        }
                    }
                    out.set(n, c, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// ArmCL-style optimized depth-wise convolution: raw NHWC indexing so the
/// channel loop is innermost and contiguous (vectorizer-friendly, the trick
/// behind ArmCL's fast MobileNet depth-wise kernels).
///
/// # Panics
///
/// Panics if `input` is not NHWC.
pub fn depthwise_opt_nhwc(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
) -> Tensor {
    assert_eq!(
        input.layout(),
        DataLayout::Nhwc,
        "depthwise_opt_nhwc requires NHWC input"
    );
    let in_s = input.shape();
    let (kh, kw) = p.kernel;
    let (sh, sw) = p.stride;
    let (ph, pw) = p.pad;
    let c_n = in_s.c;
    let x = input.as_slice();
    let mut out = Tensor::zeros(out_shape, DataLayout::Nhwc);
    let o = out.as_mut_slice();
    for n in 0..out_shape.n {
        let in_base = n * in_s.h * in_s.w * c_n;
        let out_base = n * out_shape.h * out_shape.w * c_n;
        for oy in 0..out_shape.h {
            for ox in 0..out_shape.w {
                let dst = out_base + (oy * out_shape.w + ox) * c_n;
                if !bias.is_empty() {
                    o[dst..dst + c_n].copy_from_slice(bias);
                }
                for ky in 0..kh {
                    let iy = (oy * sh + ky) as isize - ph as isize;
                    if iy < 0 || iy >= in_s.h as isize {
                        continue;
                    }
                    for kx in 0..kw {
                        let ix = (ox * sw + kx) as isize - pw as isize;
                        if ix < 0 || ix >= in_s.w as isize {
                            continue;
                        }
                        let src = in_base + (iy as usize * in_s.w + ix as usize) * c_n;
                        let tap = ky * kw + kx;
                        // Channel-contiguous FMA: o[c] += w[c][tap] * x[c].
                        for c in 0..c_n {
                            o[dst + c] += w[c * kh * kw + tap] * x[src + c];
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(stride: usize) -> (Tensor, Vec<f32>, Vec<f32>, ConvParams, Shape) {
        let in_s = Shape::new(2, 6, 9, 7);
        let input = Tensor::random(in_s, DataLayout::Nchw, 13);
        let p = ConvParams::square(0, 3, stride, 1);
        let os = Shape::new(
            in_s.n,
            in_s.c,
            (in_s.h + 2 - 3) / stride + 1,
            (in_s.w + 2 - 3) / stride + 1,
        );
        let w: Vec<f32> = (0..6 * 9)
            .map(|i| ((i * 23 + 1) % 7) as f32 * 0.1 - 0.3)
            .collect();
        let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.01).collect();
        (input, w, bias, p, os)
    }

    #[test]
    fn optimized_matches_vanilla_stride1() {
        let (input, w, bias, p, os) = fixture(1);
        let a = depthwise_vanilla(&input, &w, &bias, &p, os, DataLayout::Nchw);
        let b = depthwise_opt_nhwc(&input.to_layout(DataLayout::Nhwc), &w, &bias, &p, os);
        assert!(a.approx_eq(&b, 1e-5).unwrap());
    }

    #[test]
    fn optimized_matches_vanilla_stride2() {
        let (input, w, bias, p, os) = fixture(2);
        let a = depthwise_vanilla(&input, &w, &bias, &p, os, DataLayout::Nchw);
        let b = depthwise_opt_nhwc(&input.to_layout(DataLayout::Nhwc), &w, &bias, &p, os);
        assert!(a.approx_eq(&b, 1e-5).unwrap());
    }

    #[test]
    fn each_channel_is_independent() {
        // Zeroing channel 0's weights must zero only channel 0's output.
        let (input, mut w, _, p, os) = fixture(1);
        w[..9].fill(0.0);
        let out = depthwise_vanilla(&input, &w, &[], &p, os, DataLayout::Nchw);
        for oy in 0..os.h {
            for ox in 0..os.w {
                assert_eq!(out.at(0, 0, oy, ox), 0.0);
            }
        }
        let nonzero = (0..os.h).any(|y| (0..os.w).any(|x| out.at(0, 1, y, x) != 0.0));
        assert!(nonzero);
    }
}
