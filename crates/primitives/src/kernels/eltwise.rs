//! Multi-input kernels: element-wise addition and channel concatenation.

use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// Element-wise addition of two equal-shape tensors (layouts may differ);
/// output in `out_layout`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Tensor, b: &Tensor, out_layout: DataLayout) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add requires equal shapes");
    let s = a.shape();
    if a.layout() == b.layout() && a.layout() == out_layout {
        // Fast path: identical buffers order.
        let mut out = a.clone();
        for (o, v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *o += v;
        }
        return out;
    }
    let mut out = Tensor::zeros(s, out_layout);
    for n in 0..s.n {
        for c in 0..s.c {
            for h in 0..s.h {
                for w in 0..s.w {
                    out.set(n, c, h, w, a.at(n, c, h, w) + b.at(n, c, h, w));
                }
            }
        }
    }
    out
}

/// Channel-wise concatenation (inception modules); inputs must agree on
/// batch and spatial extents. Output in `out_layout`.
///
/// # Panics
///
/// Panics if fewer than two inputs are given or extents disagree.
pub fn concat(inputs: &[&Tensor], out_layout: DataLayout) -> Tensor {
    assert!(inputs.len() >= 2, "concat requires at least two inputs");
    let first = inputs[0].shape();
    let channels: usize = inputs.iter().map(|t| t.shape().c).sum();
    let out_shape = Shape::new(first.n, channels, first.h, first.w);
    let mut out = Tensor::zeros(out_shape, out_layout);
    let mut c_off = 0;
    for t in inputs {
        let s = t.shape();
        assert_eq!(
            (s.n, s.h, s.w),
            (first.n, first.h, first.w),
            "concat inputs must share batch and spatial extents"
        );
        for n in 0..s.n {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        out.set(n, c_off + c, h, w, t.at(n, c, h, w));
                    }
                }
            }
        }
        c_off += s.c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_fast_and_slow_paths_agree() {
        let s = Shape::new(1, 3, 4, 4);
        let a = Tensor::random(s, DataLayout::Nchw, 1);
        let b = Tensor::random(s, DataLayout::Nchw, 2);
        let fast = add(&a, &b, DataLayout::Nchw);
        let slow = add(&a.to_layout(DataLayout::Nhwc), &b, DataLayout::Nchw);
        assert!(fast.approx_eq(&slow, 1e-6).unwrap());
    }

    #[test]
    fn add_known_values() {
        let s = Shape::new(1, 1, 1, 2);
        let a = Tensor::from_vec(s, DataLayout::Nchw, vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(s, DataLayout::Nchw, vec![10.0, 20.0]).unwrap();
        assert_eq!(add(&a, &b, DataLayout::Nchw).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(Shape::new(1, 1, 2, 2), DataLayout::Nchw);
        let b = Tensor::zeros(Shape::new(1, 2, 2, 2), DataLayout::Nchw);
        add(&a, &b, DataLayout::Nchw);
    }

    #[test]
    fn concat_stacks_channels_in_order() {
        let a = Tensor::from_fn(Shape::new(1, 2, 2, 2), DataLayout::Nchw, |_, c, _, _| {
            c as f32
        });
        let b = Tensor::from_fn(Shape::new(1, 3, 2, 2), DataLayout::Nhwc, |_, c, _, _| {
            10.0 + c as f32
        });
        let out = concat(&[&a, &b], DataLayout::Nchw);
        assert_eq!(out.shape().c, 5);
        assert_eq!(out.at(0, 0, 0, 0), 0.0);
        assert_eq!(out.at(0, 1, 1, 1), 1.0);
        assert_eq!(out.at(0, 2, 0, 0), 10.0);
        assert_eq!(out.at(0, 4, 1, 0), 12.0);
    }

    #[test]
    fn concat_output_layout_is_respected() {
        let a = Tensor::random(Shape::new(1, 2, 2, 2), DataLayout::Nchw, 5);
        let b = Tensor::random(Shape::new(1, 2, 2, 2), DataLayout::Nchw, 6);
        let nchw = concat(&[&a, &b], DataLayout::Nchw);
        let nhwc = concat(&[&a, &b], DataLayout::Nhwc);
        assert_eq!(nhwc.layout(), DataLayout::Nhwc);
        assert!(nchw.approx_eq(&nhwc, 0.0).unwrap());
    }
}
