//! Executable layer kernels behind every primitive in the registry.
//!
//! Each module implements one algorithm family; all variants of a layer are
//! cross-checked against the Vanilla direct reference in unit and
//! integration tests.

pub mod activation;
pub mod conv_direct;
pub mod depthwise;
pub mod eltwise;
pub mod fc;
pub mod lowering;
pub mod pool;
pub mod sparse;
pub mod winograd;
