//! Winograd `F(2×2, 3×3)` fast convolution (NCHW).
//!
//! Uses the standard minimal-filtering transforms:
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! with 4×4 input tiles producing 2×2 output tiles, cutting the
//! multiplication count per output from 9 to 4 (2.25×) for 3×3/stride-1
//! convolutions — the algorithm behind the paper's ArmCL/NNPACK/cuDNN
//! Winograd primitives.

use qsdnn_nn::ConvParams;
use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// Transforms one 3×3 filter: `U = G g Gᵀ` (4×4).
fn filter_transform(g: &[f32; 9]) -> [f32; 16] {
    // G = [1, 0, 0; 0.5, 0.5, 0.5; 0.5, -0.5, 0.5; 0, 0, 1]
    let mut tmp = [0.0f32; 12]; // G·g: 4x3
    for col in 0..3 {
        let (g0, g1, g2) = (g[col], g[3 + col], g[6 + col]);
        tmp[col] = g0;
        tmp[3 + col] = 0.5 * (g0 + g1 + g2);
        tmp[6 + col] = 0.5 * (g0 - g1 + g2);
        tmp[9 + col] = g2;
    }
    let mut u = [0.0f32; 16]; // (G·g)·Gᵀ: 4x4
    for row in 0..4 {
        let (t0, t1, t2) = (tmp[row * 3], tmp[row * 3 + 1], tmp[row * 3 + 2]);
        u[row * 4] = t0;
        u[row * 4 + 1] = 0.5 * (t0 + t1 + t2);
        u[row * 4 + 2] = 0.5 * (t0 - t1 + t2);
        u[row * 4 + 3] = t2;
    }
    u
}

/// Transforms one 4×4 input tile: `V = Bᵀ d B`.
fn input_transform(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ = [1,0,-1,0; 0,1,1,0; 0,-1,1,0; 0,1,0,-1]
    let mut tmp = [0.0f32; 16]; // Bᵀ·d
    for col in 0..4 {
        let (d0, d1, d2, d3) = (d[col], d[4 + col], d[8 + col], d[12 + col]);
        tmp[col] = d0 - d2;
        tmp[4 + col] = d1 + d2;
        tmp[8 + col] = d2 - d1;
        tmp[12 + col] = d1 - d3;
    }
    let mut v = [0.0f32; 16]; // (Bᵀ·d)·B
    for row in 0..4 {
        let (t0, t1, t2, t3) = (
            tmp[row * 4],
            tmp[row * 4 + 1],
            tmp[row * 4 + 2],
            tmp[row * 4 + 3],
        );
        v[row * 4] = t0 - t2;
        v[row * 4 + 1] = t1 + t2;
        v[row * 4 + 2] = t2 - t1;
        v[row * 4 + 3] = t1 - t3;
    }
    v
}

/// Inverse-transforms one 4×4 accumulator tile to the 2×2 output:
/// `Y = Aᵀ m A`.
fn output_transform(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ = [1,1,1,0; 0,1,-1,-1]
    let mut tmp = [0.0f32; 8]; // Aᵀ·m: 2x4
    for col in 0..4 {
        let (m0, m1, m2, m3) = (m[col], m[4 + col], m[8 + col], m[12 + col]);
        tmp[col] = m0 + m1 + m2;
        tmp[4 + col] = m1 - m2 - m3;
    }
    let mut y = [0.0f32; 4];
    for row in 0..2 {
        let (t0, t1, t2, t3) = (
            tmp[row * 4],
            tmp[row * 4 + 1],
            tmp[row * 4 + 2],
            tmp[row * 4 + 3],
        );
        y[row * 2] = t0 + t1 + t2;
        y[row * 2 + 1] = t1 - t2 - t3;
    }
    y
}

/// Winograd `F(2×2, 3×3)` convolution. NCHW in/out; 3×3 kernel, stride 1,
/// any padding.
///
/// # Panics
///
/// Panics if the kernel is not 3×3, the stride is not 1, or `input` is not
/// NCHW.
pub fn conv_winograd(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
) -> Tensor {
    assert_eq!(
        p.kernel,
        (3, 3),
        "winograd F(2x2,3x3) requires a 3x3 kernel"
    );
    assert_eq!(p.stride, (1, 1), "winograd F(2x2,3x3) requires stride 1");
    assert_eq!(
        input.layout(),
        DataLayout::Nchw,
        "winograd kernel requires NCHW input"
    );
    let in_s = input.shape();
    let (ic, ih, iw) = (in_s.c, in_s.h, in_s.w);
    let oc = out_shape.c;
    let (ph, pw) = p.pad;
    let x = input.as_slice();
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);

    // Pre-transform all filters: U[oc][ic][16].
    let mut u = vec![0.0f32; oc * ic * 16];
    for o in 0..oc {
        for c in 0..ic {
            let base = (o * ic + c) * 9;
            let g: [f32; 9] = w[base..base + 9].try_into().expect("9 taps");
            u[(o * ic + c) * 16..(o * ic + c) * 16 + 16].copy_from_slice(&filter_transform(&g));
        }
    }

    let tiles_y = out_shape.h.div_ceil(2);
    let tiles_x = out_shape.w.div_ceil(2);
    let mut v = vec![0.0f32; ic * 16];
    for n in 0..out_shape.n {
        let in_base = n * ic * ih * iw;
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                // Gather the 4x4 input tile for every channel (with padding).
                let oy0 = ty * 2;
                let ox0 = tx * 2;
                for c in 0..ic {
                    let mut d = [0.0f32; 16];
                    for r in 0..4 {
                        let iy = (oy0 + r) as isize - ph as isize;
                        if iy < 0 || iy >= ih as isize {
                            continue;
                        }
                        for col in 0..4 {
                            let ix = (ox0 + col) as isize - pw as isize;
                            if ix < 0 || ix >= iw as isize {
                                continue;
                            }
                            d[r * 4 + col] =
                                x[in_base + c * ih * iw + iy as usize * iw + ix as usize];
                        }
                    }
                    v[c * 16..c * 16 + 16].copy_from_slice(&input_transform(&d));
                }
                // Per output channel: elementwise product + inverse transform.
                for o in 0..oc {
                    let mut m = [0.0f32; 16];
                    for c in 0..ic {
                        let uu = &u[(o * ic + c) * 16..(o * ic + c) * 16 + 16];
                        let vv = &v[c * 16..c * 16 + 16];
                        for i in 0..16 {
                            m[i] += uu[i] * vv[i];
                        }
                    }
                    let y = output_transform(&m);
                    let b = if bias.is_empty() { 0.0 } else { bias[o] };
                    for r in 0..2 {
                        let oy = oy0 + r;
                        if oy >= out_shape.h {
                            continue;
                        }
                        for col in 0..2 {
                            let ox = ox0 + col;
                            if ox >= out_shape.w {
                                continue;
                            }
                            out.set(n, o, oy, ox, y[r * 2 + col] + b);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::conv_direct::conv_direct_vanilla;

    fn check(ih: usize, iw: usize, ic: usize, oc: usize, pad: usize, seed: u64) {
        let in_s = Shape::new(1, ic, ih, iw);
        let input = Tensor::random(in_s, DataLayout::Nchw, seed);
        let p = ConvParams::square(oc, 3, 1, pad);
        let os = Shape::new(1, oc, ih + 2 * pad - 2, iw + 2 * pad - 2);
        let w: Vec<f32> = (0..oc * ic * 9)
            .map(|i| ((i * 29 + 11) % 17) as f32 * 0.05 - 0.4)
            .collect();
        let bias: Vec<f32> = (0..oc).map(|i| i as f32 * 0.02).collect();
        let expect = conv_direct_vanilla(&input, &w, &bias, &p, os, DataLayout::Nchw);
        let got = conv_winograd(&input, &w, &bias, &p, os);
        let d = expect.max_abs_diff(&got).unwrap();
        assert!(
            d < 1e-3,
            "ih={ih} iw={iw} ic={ic} oc={oc} pad={pad}: diff {d}"
        );
    }

    #[test]
    fn matches_direct_same_padding() {
        check(8, 8, 3, 4, 1, 1);
    }

    #[test]
    fn matches_direct_valid_padding() {
        check(10, 10, 2, 3, 0, 2);
    }

    #[test]
    fn matches_direct_odd_output_extents() {
        // 7x7 output forces ragged final tiles.
        check(7, 9, 4, 2, 1, 3);
    }

    #[test]
    fn matches_direct_many_channels() {
        check(6, 6, 16, 8, 1, 4);
    }

    #[test]
    fn filter_transform_of_identity_tap() {
        // Delta filter at center: convolution = identity. U should reproduce
        // a valid transform (sanity: output equals input under same pad).
        let in_s = Shape::new(1, 1, 6, 6);
        let input = Tensor::random(in_s, DataLayout::Nchw, 5);
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0; // center tap
        let p = ConvParams::square(1, 3, 1, 1);
        let os = Shape::new(1, 1, 6, 6);
        let got = conv_winograd(&input, &w, &[], &p, os);
        assert!(input.approx_eq(&got, 1e-4).unwrap());
    }

    #[test]
    #[should_panic(expected = "3x3 kernel")]
    fn rejects_5x5() {
        let in_s = Shape::new(1, 1, 8, 8);
        let input = Tensor::zeros(in_s, DataLayout::Nchw);
        let p = ConvParams::square(1, 5, 1, 2);
        conv_winograd(&input, &[0.0; 25], &[], &p, in_s);
    }
}
