//! Direct (nested-loop) convolution kernels.

use qsdnn_nn::ConvParams;
use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// Vanilla direct convolution: accessor-based nested loops, any input
/// layout, output produced in `out_layout`.
///
/// This is the dependency-free reference implementation — deliberately
/// unoptimized, like the paper's ANSI-C Vanilla library.
pub fn conv_direct_vanilla(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
    out_layout: DataLayout,
) -> Tensor {
    let in_shape = input.shape();
    let (kh, kw) = p.kernel;
    let (sh, sw) = p.stride;
    let (ph, pw) = p.pad;
    let ic = in_shape.c;
    let mut out = Tensor::zeros(out_shape, out_layout);
    for n in 0..out_shape.n {
        for oc in 0..out_shape.c {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    let mut acc = if bias.is_empty() { 0.0 } else { bias[oc] };
                    for c in 0..ic {
                        for ky in 0..kh {
                            let iy = (oy * sh + ky) as isize - ph as isize;
                            if iy < 0 || iy >= in_shape.h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * sw + kx) as isize - pw as isize;
                                if ix < 0 || ix >= in_shape.w as isize {
                                    continue;
                                }
                                let wv = w[((oc * ic + c) * kh + ky) * kw + kx];
                                acc += wv * input.at(n, c, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(n, oc, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// NNPACK-style optimized direct convolution: raw NCHW indexing with an
/// output-channel-blocked inner structure.
///
/// Requires (and produces) NCHW buffers; semantics identical to
/// [`conv_direct_vanilla`].
///
/// # Panics
///
/// Panics if `input` is not NCHW.
pub fn conv_direct_opt(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
) -> Tensor {
    assert_eq!(
        input.layout(),
        DataLayout::Nchw,
        "conv_direct_opt requires NCHW input"
    );
    let in_shape = input.shape();
    let (kh, kw) = p.kernel;
    let (sh, sw) = p.stride;
    let (ph, pw) = p.pad;
    let (ic, ih, iw) = (in_shape.c, in_shape.h, in_shape.w);
    let (oc_n, oh, ow) = (out_shape.c, out_shape.h, out_shape.w);
    let x = input.as_slice();
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);
    let o = out.as_mut_slice();

    const OCB: usize = 4; // output channels per register block
    for n in 0..out_shape.n {
        let in_base = n * ic * ih * iw;
        let out_base = n * oc_n * oh * ow;
        let mut oc0 = 0;
        while oc0 < oc_n {
            let ocb = (oc_n - oc0).min(OCB);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = [0.0f32; OCB];
                    for (bi, a) in acc.iter_mut().enumerate().take(ocb) {
                        if !bias.is_empty() {
                            *a = bias[oc0 + bi];
                        }
                    }
                    for c in 0..ic {
                        let plane = in_base + c * ih * iw;
                        for ky in 0..kh {
                            let iy = (oy * sh + ky) as isize - ph as isize;
                            if iy < 0 || iy >= ih as isize {
                                continue;
                            }
                            let row = plane + iy as usize * iw;
                            for kx in 0..kw {
                                let ix = (ox * sw + kx) as isize - pw as isize;
                                if ix < 0 || ix >= iw as isize {
                                    continue;
                                }
                                let xv = x[row + ix as usize];
                                for (bi, a) in acc.iter_mut().enumerate().take(ocb) {
                                    let wv = w[(((oc0 + bi) * ic + c) * kh + ky) * kw + kx];
                                    *a += wv * xv;
                                }
                            }
                        }
                    }
                    for (bi, a) in acc.iter().enumerate().take(ocb) {
                        o[out_base + (oc0 + bi) * oh * ow + oy * ow + ox] = *a;
                    }
                }
            }
            oc0 += ocb;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(k: usize, s: usize, p: usize, oc: usize) -> ConvParams {
        ConvParams::square(oc, k, s, p)
    }

    fn out_shape(in_s: Shape, p: &ConvParams) -> Shape {
        Shape::new(
            in_s.n,
            p.out_channels,
            (in_s.h + 2 * p.pad.0 - p.kernel.0) / p.stride.0 + 1,
            (in_s.w + 2 * p.pad.1 - p.kernel.1) / p.stride.1 + 1,
        )
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv with identity weights = channel mix with unit matrix.
        let in_s = Shape::new(1, 2, 3, 3);
        let input = Tensor::random(in_s, DataLayout::Nchw, 1);
        let w = vec![1.0, 0.0, 0.0, 1.0]; // [oc=2][ic=2][1][1]
        let p = params(1, 1, 0, 2);
        let out = conv_direct_vanilla(&input, &w, &[], &p, out_shape(in_s, &p), DataLayout::Nchw);
        assert!(out.approx_eq(&input, 1e-6).unwrap());
    }

    #[test]
    fn known_3x3_valid_convolution() {
        // Single channel 3x3 input, all-ones kernel, no pad: sum of input.
        let in_s = Shape::new(1, 1, 3, 3);
        let input = Tensor::from_fn(in_s, DataLayout::Nchw, |_, _, h, w| (h * 3 + w) as f32);
        let w = vec![1.0; 9];
        let p = params(3, 1, 0, 1);
        let out = conv_direct_vanilla(&input, &w, &[], &p, out_shape(in_s, &p), DataLayout::Nchw);
        assert_eq!(out.at(0, 0, 0, 0), 36.0);
    }

    #[test]
    fn bias_is_added() {
        let in_s = Shape::new(1, 1, 2, 2);
        let input = Tensor::zeros(in_s, DataLayout::Nchw);
        let p = params(1, 1, 0, 1);
        let out = conv_direct_vanilla(
            &input,
            &[0.0],
            &[5.0],
            &p,
            out_shape(in_s, &p),
            DataLayout::Nchw,
        );
        assert_eq!(out.at(0, 0, 1, 1), 5.0);
    }

    #[test]
    fn optimized_matches_vanilla() {
        let in_s = Shape::new(2, 3, 9, 7);
        let input = Tensor::random(in_s, DataLayout::Nchw, 5);
        for (k, s, pad, oc) in [(3, 1, 1, 5), (5, 2, 2, 7), (1, 1, 0, 4), (3, 2, 1, 6)] {
            let p = params(k, s, pad, oc);
            let os = out_shape(in_s, &p);
            let w: Vec<f32> = (0..oc * 3 * k * k)
                .map(|i| ((i * 31 + 7) % 13) as f32 * 0.1 - 0.6)
                .collect();
            let bias: Vec<f32> = (0..oc).map(|i| i as f32 * 0.01).collect();
            let a = conv_direct_vanilla(&input, &w, &bias, &p, os, DataLayout::Nchw);
            let b = conv_direct_opt(&input, &w, &bias, &p, os);
            assert!(a.approx_eq(&b, 1e-4).unwrap(), "k={k} s={s}");
        }
    }

    #[test]
    fn vanilla_accepts_nhwc_input_and_output() {
        let in_s = Shape::new(1, 3, 6, 6);
        let input_nchw = Tensor::random(in_s, DataLayout::Nchw, 9);
        let input_nhwc = input_nchw.to_layout(DataLayout::Nhwc);
        let p = params(3, 1, 1, 4);
        let os = out_shape(in_s, &p);
        let w: Vec<f32> = (0..4 * 3 * 9).map(|i| (i % 5) as f32 * 0.1).collect();
        let a = conv_direct_vanilla(&input_nchw, &w, &[], &p, os, DataLayout::Nchw);
        let b = conv_direct_vanilla(&input_nhwc, &w, &[], &p, os, DataLayout::Nhwc);
        assert!(a.approx_eq(&b, 1e-5).unwrap());
    }

    #[test]
    #[should_panic(expected = "requires NCHW")]
    fn optimized_rejects_nhwc() {
        let in_s = Shape::new(1, 1, 4, 4);
        let input = Tensor::zeros(in_s, DataLayout::Nhwc);
        let p = params(3, 1, 1, 1);
        conv_direct_opt(&input, &[0.0; 9], &[], &p, out_shape(in_s, &p));
    }
}
