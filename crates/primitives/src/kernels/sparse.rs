//! Compressed-sparse-row kernels for 1×1 convolutions and FC layers.

use qsdnn_nn::ConvParams;
use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// A CSR matrix built from a dense row-major weight matrix, keeping only
/// non-zero entries. This is the in-memory compressed model representation
/// of the paper's *Sparse* library.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Compresses a dense `rows×cols` row-major matrix.
    pub fn from_dense(rows: usize, cols: usize, dense: &[f32]) -> Self {
        assert!(dense.len() >= rows * cols, "dense matrix too short");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored fraction of the dense size.
    pub fn density(&self) -> f32 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f32 / (self.rows * self.cols) as f32
    }

    /// `y = M · x` (sparse matrix, dense vector).
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) {
        assert!(x.len() >= self.cols, "x too short");
        assert!(y.len() >= self.rows, "y too short");
        for (r, out) in y.iter_mut().enumerate().take(self.rows) {
            let mut acc = 0.0f32;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i]];
            }
            *out = acc;
        }
    }

    /// `C = M · B` for dense row-major `B` (`cols×n`) into `C` (`rows×n`).
    pub fn spmm(&self, b: &[f32], n: usize, c: &mut [f32]) {
        assert!(b.len() >= self.cols * n, "b too short");
        assert!(c.len() >= self.rows * n, "c too short");
        c[..self.rows * n].fill(0.0);
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let v = self.values[i];
                let brow = &b[self.col_idx[i] * n..self.col_idx[i] * n + n];
                let crow = &mut c[r * n..r * n + n];
                for j in 0..n {
                    crow[j] += v * brow[j];
                }
            }
        }
    }
}

/// Sparse 1×1 convolution: CSR `[OC×IC]` times the NCHW channel-major plane
/// matrix `[IC × H*W]`. NCHW in/out.
///
/// # Panics
///
/// Panics if the kernel is not 1×1/stride-1 or `input` is not NCHW.
pub fn conv1x1_sparse(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
) -> Tensor {
    assert_eq!(p.kernel, (1, 1), "sparse convolution covers 1x1 kernels");
    assert_eq!(p.stride, (1, 1), "sparse convolution requires stride 1");
    assert_eq!(
        input.layout(),
        DataLayout::Nchw,
        "sparse convolution requires NCHW input"
    );
    let in_s = input.shape();
    let plane = in_s.h * in_s.w;
    let csr = CsrMatrix::from_dense(out_shape.c, in_s.c, w);
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);
    for n in 0..out_shape.n {
        let x = &input.as_slice()[n * in_s.c * plane..(n + 1) * in_s.c * plane];
        let dst = &mut out.as_mut_slice()[n * out_shape.c * plane..(n + 1) * out_shape.c * plane];
        csr.spmm(x, plane, dst);
        if !bias.is_empty() {
            for ch in 0..out_shape.c {
                for i in 0..plane {
                    dst[ch * plane + i] += bias[ch];
                }
            }
        }
    }
    out
}

/// Sparse fully-connected layer: CSR `[OUT×IN]` GEMV per batch element.
/// NCHW (vector) in/out.
pub fn fc_sparse(input: &Tensor, w: &[f32], bias: &[f32], out_shape: Shape) -> Tensor {
    let in_s = input.shape();
    let in_features = in_s.volume() / in_s.n.max(1);
    let out_features = out_shape.c;
    let csr = CsrMatrix::from_dense(out_features, in_features, w);
    let x_nchw = input.to_layout(DataLayout::Nchw);
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);
    for n in 0..in_s.n {
        let x = &x_nchw.as_slice()[n * in_features..(n + 1) * in_features];
        let y = &mut out.as_mut_slice()[n * out_features..(n + 1) * out_features];
        csr.spmv(x, y);
        if !bias.is_empty() {
            for (yi, b) in y.iter_mut().zip(bias) {
                *yi += b;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn csr_roundtrip_density() {
        let dense = vec![1.0, 0.0, 0.0, 2.0, 0.0, 3.0];
        let csr = CsrMatrix::from_dense(2, 3, &dense);
        assert_eq!(csr.nnz(), 3);
        assert!((csr.density() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn spmv_matches_dense() {
        let dense = vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let csr = CsrMatrix::from_dense(2, 3, &dense);
        let x = [1.0, 10.0, 100.0];
        let mut y = [0.0; 2];
        csr.spmv(&x, &mut y);
        assert_eq!(y, [201.0, 30.0]);
    }

    #[test]
    fn sparse_conv_matches_dense_direct() {
        use crate::kernels::conv_direct::conv_direct_vanilla;
        let in_s = Shape::new(1, 8, 5, 5);
        let input = Tensor::random(in_s, DataLayout::Nchw, 3);
        let p = ConvParams::square(6, 1, 1, 0).with_density(0.3);
        let os = Shape::new(1, 6, 5, 5);
        // Weights with actual zeros.
        let w: Vec<f32> = (0..48)
            .map(|i| {
                if i % 3 == 0 {
                    (i % 7) as f32 * 0.2 - 0.5
                } else {
                    0.0
                }
            })
            .collect();
        let bias = vec![0.1; 6];
        let expect = conv_direct_vanilla(&input, &w, &bias, &p, os, DataLayout::Nchw);
        let got = conv1x1_sparse(&input, &w, &bias, &p, os);
        assert!(expect.approx_eq(&got, 1e-5).unwrap());
    }

    #[test]
    fn sparse_fc_matches_dense_gemv() {
        let in_s = Shape::new(2, 4, 2, 2); // 16 features
        let input = Tensor::random(in_s, DataLayout::Nchw, 4);
        let os = Shape::vector(2, 5);
        let w: Vec<f32> = (0..80)
            .map(|i| {
                if i % 4 == 0 {
                    (i % 9) as f32 * 0.1
                } else {
                    0.0
                }
            })
            .collect();
        let bias = vec![0.5; 5];
        let got = fc_sparse(&input, &w, &bias, os);
        // Dense reference.
        let mut expect = Tensor::zeros(os, DataLayout::Nchw);
        for n in 0..2 {
            for o in 0..5 {
                let mut acc = bias[o];
                for i in 0..16 {
                    acc += w[o * 16 + i] * input.as_slice()[n * 16 + i];
                }
                expect.set(n, o, 0, 0, acc);
            }
        }
        assert!(expect.approx_eq(&got, 1e-5).unwrap());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_spmm_matches_dense(rows in 1usize..8, cols in 1usize..8, n in 1usize..8, seed in 0u64..200) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let dense: Vec<f32> = (0..rows * cols)
                .map(|_| if rng.gen_bool(0.4) { rng.gen_range(-1.0..1.0) } else { 0.0 })
                .collect();
            let b: Vec<f32> = (0..cols * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let csr = CsrMatrix::from_dense(rows, cols, &dense);
            let mut c0 = vec![0.0; rows * n];
            let mut c1 = vec![0.0; rows * n];
            qsdnn_gemm::sgemm_naive(rows, cols, n, &dense, &b, &mut c0);
            csr.spmm(&b, n, &mut c1);
            let d = c0.iter().zip(&c1).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max);
            prop_assert!(d < 1e-4);
        }
    }
}
