//! Pooling kernels (max / average / global, ceil or floor rounding).

use qsdnn_nn::{PoolKind, PoolParams};
use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// Generic pooling: accessor-based, any input layout, output in
/// `out_layout`. Average pooling divides by the number of *valid* (inside
/// the un-padded input) window elements, matching Caffe.
pub fn pool_generic(
    input: &Tensor,
    p: &PoolParams,
    out_shape: Shape,
    out_layout: DataLayout,
) -> Tensor {
    let in_s = input.shape();
    let mut out = Tensor::zeros(out_shape, out_layout);
    if p.global {
        let denom = (in_s.h * in_s.w) as f32;
        for n in 0..in_s.n {
            for c in 0..in_s.c {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                for y in 0..in_s.h {
                    for x in 0..in_s.w {
                        let v = input.at(n, c, y, x);
                        best = best.max(v);
                        sum += v;
                    }
                }
                let v = match p.kind {
                    PoolKind::Max => best,
                    PoolKind::Avg => sum / denom,
                };
                out.set(n, c, 0, 0, v);
            }
        }
        return out;
    }
    let (kh, kw) = p.kernel;
    let (sh, sw) = p.stride;
    let (ph, pw) = p.pad;
    for n in 0..out_shape.n {
        for c in 0..out_shape.c {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    let mut best = f32::NEG_INFINITY;
                    let mut sum = 0.0f32;
                    let mut count = 0usize;
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy >= in_s.h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix < 0 || ix >= in_s.w as isize {
                                continue;
                            }
                            let v = input.at(n, c, iy as usize, ix as usize);
                            best = best.max(v);
                            sum += v;
                            count += 1;
                        }
                    }
                    let v = match p.kind {
                        PoolKind::Max => {
                            if count == 0 {
                                0.0
                            } else {
                                best
                            }
                        }
                        PoolKind::Avg => {
                            if count == 0 {
                                0.0
                            } else {
                                sum / count as f32
                            }
                        }
                    };
                    out.set(n, c, oy, ox, v);
                }
            }
        }
    }
    out
}

/// NNPACK-style fast path: 2×2/stride-2 max pooling with raw NCHW indexing.
///
/// # Panics
///
/// Panics unless the parameters are exactly max/2×2/s2/no-pad and `input` is
/// NCHW.
pub fn maxpool_2x2_s2_nchw(input: &Tensor, out_shape: Shape) -> Tensor {
    assert_eq!(
        input.layout(),
        DataLayout::Nchw,
        "fast maxpool requires NCHW input"
    );
    let in_s = input.shape();
    let x = input.as_slice();
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);
    let o = out.as_mut_slice();
    let (ih, iw) = (in_s.h, in_s.w);
    let (oh, ow) = (out_shape.h, out_shape.w);
    for nc in 0..in_s.n * in_s.c {
        let src = nc * ih * iw;
        let dst = nc * oh * ow;
        for oy in 0..oh {
            let y0 = oy * 2;
            for ox in 0..ow {
                let x0 = ox * 2;
                let mut best = x[src + y0 * iw + x0];
                if x0 + 1 < iw {
                    best = best.max(x[src + y0 * iw + x0 + 1]);
                }
                if y0 + 1 < ih {
                    best = best.max(x[src + (y0 + 1) * iw + x0]);
                    if x0 + 1 < iw {
                        best = best.max(x[src + (y0 + 1) * iw + x0 + 1]);
                    }
                }
                o[dst + oy * ow + ox] = best;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_known_values() {
        let in_s = Shape::new(1, 1, 4, 4);
        let input = Tensor::from_fn(in_s, DataLayout::Nchw, |_, _, h, w| (h * 4 + w) as f32);
        let p = PoolParams::square(PoolKind::Max, 2, 2, 0);
        let out = pool_generic(&input, &p, Shape::new(1, 1, 2, 2), DataLayout::Nchw);
        assert_eq!(out.at(0, 0, 0, 0), 5.0);
        assert_eq!(out.at(0, 0, 1, 1), 15.0);
    }

    #[test]
    fn avg_pool_counts_valid_only() {
        // With pad 1 the corner window has a single valid element.
        let in_s = Shape::new(1, 1, 2, 2);
        let input = Tensor::from_fn(in_s, DataLayout::Nchw, |_, _, _, _| 8.0);
        let p = PoolParams::square(PoolKind::Avg, 2, 2, 1);
        let out = pool_generic(&input, &p, Shape::new(1, 1, 2, 2), DataLayout::Nchw);
        assert_eq!(out.at(0, 0, 0, 0), 8.0);
    }

    #[test]
    fn global_avg_and_max() {
        let in_s = Shape::new(1, 2, 3, 3);
        let input = Tensor::from_fn(in_s, DataLayout::Nchw, |_, c, h, w| {
            if c == 0 {
                (h * 3 + w) as f32
            } else {
                1.0
            }
        });
        let avg = pool_generic(
            &input,
            &PoolParams::global(PoolKind::Avg),
            Shape::new(1, 2, 1, 1),
            DataLayout::Nchw,
        );
        assert_eq!(avg.at(0, 0, 0, 0), 4.0);
        assert_eq!(avg.at(0, 1, 0, 0), 1.0);
        let max = pool_generic(
            &input,
            &PoolParams::global(PoolKind::Max),
            Shape::new(1, 2, 1, 1),
            DataLayout::Nchw,
        );
        assert_eq!(max.at(0, 0, 0, 0), 8.0);
    }

    #[test]
    fn fast_path_matches_generic() {
        let in_s = Shape::new(2, 3, 8, 8);
        let input = Tensor::random(in_s, DataLayout::Nchw, 17);
        let p = PoolParams::square(PoolKind::Max, 2, 2, 0);
        let os = Shape::new(2, 3, 4, 4);
        let a = pool_generic(&input, &p, os, DataLayout::Nchw);
        let b = maxpool_2x2_s2_nchw(&input, os);
        assert!(a.approx_eq(&b, 0.0).unwrap());
    }

    #[test]
    fn fast_path_handles_odd_extents() {
        // 5x5 input with ceil-mode output 3x3: ragged bottom/right windows.
        let in_s = Shape::new(1, 1, 5, 5);
        let input = Tensor::random(in_s, DataLayout::Nchw, 23);
        let p = PoolParams::square(PoolKind::Max, 2, 2, 0);
        let os = Shape::new(1, 1, 3, 3);
        let a = pool_generic(&input, &p, os, DataLayout::Nchw);
        let b = maxpool_2x2_s2_nchw(&input, os);
        assert!(a.approx_eq(&b, 0.0).unwrap());
    }

    #[test]
    fn nhwc_output_layout_preserves_values() {
        let in_s = Shape::new(1, 4, 6, 6);
        let input = Tensor::random(in_s, DataLayout::Nchw, 29);
        let p = PoolParams::square(PoolKind::Avg, 3, 2, 0);
        let os = Shape::new(1, 4, 2, 2);
        let a = pool_generic(&input, &p, os, DataLayout::Nchw);
        let b = pool_generic(&input.to_layout(DataLayout::Nhwc), &p, os, DataLayout::Nhwc);
        assert!(a.approx_eq(&b, 1e-6).unwrap());
    }
}
