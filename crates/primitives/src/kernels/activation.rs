//! Element-wise and normalization kernels: ReLU, batch-norm, LRN, softmax.

use qsdnn_nn::LrnParams;
use qsdnn_tensor::{Shape, Tensor};

/// ReLU. Element-wise, so the buffer can be processed directly in whatever
/// layout the input uses; the output keeps that layout.
pub fn relu(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Inference-time batch normalization: `y = x * scale[c] + shift[c]`.
/// Output keeps the input layout.
pub fn batch_norm(input: &Tensor, scale: &[f32], shift: &[f32]) -> Tensor {
    let s = input.shape();
    let mut out = Tensor::zeros(s, input.layout());
    for n in 0..s.n {
        for c in 0..s.c {
            let (sc, sh) = (scale[c], shift[c]);
            for h in 0..s.h {
                for w in 0..s.w {
                    out.set(n, c, h, w, input.at(n, c, h, w) * sc + sh);
                }
            }
        }
    }
    out
}

/// Local response normalization across channels (Caffe `ACROSS_CHANNELS`):
///
/// `y[c] = x[c] / (k + alpha/size * sum_{c'} x[c']^2)^beta` over a window of
/// `size` channels centred on `c`. Output keeps the input layout.
pub fn lrn(input: &Tensor, p: &LrnParams) -> Tensor {
    let s = input.shape();
    let half = p.size / 2;
    let mut out = Tensor::zeros(s, input.layout());
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                for c in 0..s.c {
                    let lo = c.saturating_sub(half);
                    let hi = (c + half).min(s.c - 1);
                    let mut sq = 0.0f32;
                    for ci in lo..=hi {
                        let v = input.at(n, ci, h, w);
                        sq += v * v;
                    }
                    let denom = (p.k + p.alpha / p.size as f32 * sq).powf(p.beta);
                    out.set(n, c, h, w, input.at(n, c, h, w) / denom);
                }
            }
        }
    }
    out
}

/// Numerically-stable softmax over channels, per `(n, h, w)` position.
/// Output keeps the input layout.
pub fn softmax(input: &Tensor) -> Tensor {
    let s = input.shape();
    let mut out = Tensor::zeros(s, input.layout());
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                let mut max = f32::NEG_INFINITY;
                for c in 0..s.c {
                    max = max.max(input.at(n, c, h, w));
                }
                let mut sum = 0.0f32;
                for c in 0..s.c {
                    sum += (input.at(n, c, h, w) - max).exp();
                }
                for c in 0..s.c {
                    out.set(n, c, h, w, (input.at(n, c, h, w) - max).exp() / sum);
                }
            }
        }
    }
    out
}

/// Helper: output shape equals input shape for all kernels in this module.
pub fn same_shape(input: &Tensor) -> Shape {
    input.shape()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_tensor::DataLayout;

    #[test]
    fn relu_clamps_negatives_only() {
        let t = Tensor::from_vec(
            Shape::new(1, 1, 1, 4),
            DataLayout::Nchw,
            vec![-1.0, 0.0, 2.5, -0.1],
        )
        .unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn relu_preserves_layout() {
        let t = Tensor::random(Shape::new(1, 3, 2, 2), DataLayout::Nhwc, 3);
        assert_eq!(relu(&t).layout(), DataLayout::Nhwc);
    }

    #[test]
    fn batch_norm_scales_per_channel() {
        let t = Tensor::from_fn(Shape::new(1, 2, 1, 2), DataLayout::Nchw, |_, _, _, _| 2.0);
        let out = batch_norm(&t, &[1.0, 10.0], &[0.5, 0.0]);
        assert_eq!(out.at(0, 0, 0, 0), 2.5);
        assert_eq!(out.at(0, 1, 0, 1), 20.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let t = Tensor::from_vec(
            Shape::new(1, 3, 1, 1),
            DataLayout::Nchw,
            vec![1.0, 3.0, 2.0],
        )
        .unwrap();
        let s = softmax(&t);
        let sum: f32 = s.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s.at(0, 1, 0, 0) > s.at(0, 2, 0, 0));
        assert!(s.at(0, 2, 0, 0) > s.at(0, 0, 0, 0));
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let t = Tensor::from_vec(
            Shape::new(1, 2, 1, 1),
            DataLayout::Nchw,
            vec![1000.0, 1001.0],
        )
        .unwrap();
        let s = softmax(&t);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lrn_normalizes_by_neighbourhood_energy() {
        let p = LrnParams {
            size: 3,
            alpha: 1.0,
            beta: 1.0,
            k: 1.0,
        };
        let t = Tensor::from_vec(
            Shape::new(1, 3, 1, 1),
            DataLayout::Nchw,
            vec![3.0, 0.0, 4.0],
        )
        .unwrap();
        let out = lrn(&t, &p);
        // c=0 window {0,1}: sq=9  -> denom = 1 + 9/3 = 4   -> 0.75
        // c=1 window {0,1,2}: sq=25 -> denom = 1 + 25/3    -> 0.0
        // c=2 window {1,2}: sq=16 -> denom = 1 + 16/3      -> 4/(19/3)
        assert!((out.at(0, 0, 0, 0) - 0.75).abs() < 1e-5);
        assert_eq!(out.at(0, 1, 0, 0), 0.0);
        assert!((out.at(0, 2, 0, 0) - 4.0 / (1.0 + 16.0 / 3.0)).abs() < 1e-5);
    }

    #[test]
    fn lrn_identity_when_alpha_zero() {
        let p = LrnParams {
            size: 5,
            alpha: 0.0,
            beta: 0.75,
            k: 1.0,
        };
        let t = Tensor::random(Shape::new(1, 4, 2, 2), DataLayout::Nchw, 8);
        assert!(lrn(&t, &p).approx_eq(&t, 1e-6).unwrap());
    }
}
