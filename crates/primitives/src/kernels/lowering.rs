//! GEMM-lowered convolutions: `im2col`, `im2row` and `kn2row`.

use qsdnn_gemm::Gemm;
use qsdnn_nn::ConvParams;
use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// Lowers an NCHW input into the `im2col` patch matrix of shape
/// `[C*KH*KW, OH*OW]` (patches as columns).
///
/// # Panics
///
/// Panics if `input` is not NCHW.
pub fn im2col(input: &Tensor, p: &ConvParams, out_shape: Shape, n: usize) -> Vec<f32> {
    assert_eq!(
        input.layout(),
        DataLayout::Nchw,
        "im2col requires NCHW input"
    );
    let in_s = input.shape();
    let (kh, kw) = p.kernel;
    let (sh, sw) = p.stride;
    let (ph, pw) = p.pad;
    let (oh, ow) = (out_shape.h, out_shape.w);
    let cols = oh * ow;
    let rows = in_s.c * kh * kw;
    let x = input.as_slice();
    let plane = in_s.h * in_s.w;
    let batch_base = n * in_s.c * plane;
    let mut m = vec![0.0f32; rows * cols];
    for c in 0..in_s.c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                for oy in 0..oh {
                    let iy = (oy * sh + ky) as isize - ph as isize;
                    if iy < 0 || iy >= in_s.h as isize {
                        continue;
                    }
                    let src_row = batch_base + c * plane + iy as usize * in_s.w;
                    for ox in 0..ow {
                        let ix = (ox * sw + kx) as isize - pw as isize;
                        if ix < 0 || ix >= in_s.w as isize {
                            continue;
                        }
                        m[row * cols + oy * ow + ox] = x[src_row + ix as usize];
                    }
                }
            }
        }
    }
    m
}

/// Lowers an NHWC input into the `im2row` patch matrix of shape
/// `[OH*OW, C*KH*KW]` (patches as rows, channel-innermost like the input).
///
/// # Panics
///
/// Panics if `input` is not NHWC.
pub fn im2row(input: &Tensor, p: &ConvParams, out_shape: Shape, n: usize) -> Vec<f32> {
    assert_eq!(
        input.layout(),
        DataLayout::Nhwc,
        "im2row requires NHWC input"
    );
    let in_s = input.shape();
    let (kh, kw) = p.kernel;
    let (sh, sw) = p.stride;
    let (ph, pw) = p.pad;
    let (oh, ow) = (out_shape.h, out_shape.w);
    let patch = in_s.c * kh * kw;
    let x = input.as_slice();
    let batch_base = n * in_s.h * in_s.w * in_s.c;
    let mut m = vec![0.0f32; oh * ow * patch];
    for oy in 0..oh {
        for ox in 0..ow {
            let dst = (oy * ow + ox) * patch;
            for ky in 0..kh {
                let iy = (oy * sh + ky) as isize - ph as isize;
                if iy < 0 || iy >= in_s.h as isize {
                    continue;
                }
                for kx in 0..kw {
                    let ix = (ox * sw + kx) as isize - pw as isize;
                    if ix < 0 || ix >= in_s.w as isize {
                        continue;
                    }
                    let src = batch_base + (iy as usize * in_s.w + ix as usize) * in_s.c;
                    let d = dst + (ky * kw + kx) * in_s.c;
                    m[d..d + in_s.c].copy_from_slice(&x[src..src + in_s.c]);
                }
            }
        }
    }
    m
}

/// `im2col` + GEMM convolution. NCHW in, NCHW out.
///
/// Weights are `[OC][IC*KH*KW]` row-major, which is exactly the GEMM `A`
/// operand; the patch matrix is `B`; the product is the output plane.
pub fn conv_im2col_gemm(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
    gemm: Gemm,
) -> Tensor {
    let in_s = input.shape();
    let patch = in_s.c * p.kernel.0 * p.kernel.1;
    let cols = out_shape.h * out_shape.w;
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);
    let oc = out_shape.c;
    for n in 0..out_shape.n {
        let m = im2col(input, p, out_shape, n);
        let mut c = vec![0.0f32; oc * cols];
        gemm.sgemm(oc, patch, cols, w, &m, &mut c);
        let dst = &mut out.as_mut_slice()[n * oc * cols..(n + 1) * oc * cols];
        dst.copy_from_slice(&c);
        if !bias.is_empty() {
            for ch in 0..oc {
                for i in 0..cols {
                    dst[ch * cols + i] += bias[ch];
                }
            }
        }
    }
    out
}

/// `im2row` + GEMM convolution. NHWC in, NHWC out.
///
/// The patch matrix `[OH*OW, patch]` is `A`; the transposed weights
/// `[patch, OC]` are `B`; the product is directly the NHWC output.
pub fn conv_im2row_gemm(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
    gemm: Gemm,
) -> Tensor {
    let in_s = input.shape();
    let (kh, kw) = p.kernel;
    let patch = in_s.c * kh * kw;
    let oc = out_shape.c;
    // Repack weights [OC][IC][KH][KW] -> [KH*KW*IC(kernel-major patch order), OC].
    // The im2row patch order is (ky, kx, c) innermost-c, so weights must match.
    let mut wt = vec![0.0f32; patch * oc];
    for o in 0..oc {
        for c in 0..in_s.c {
            for ky in 0..kh {
                for kx in 0..kw {
                    let src = ((o * in_s.c + c) * kh + ky) * kw + kx;
                    let row = (ky * kw + kx) * in_s.c + c;
                    wt[row * oc + o] = w[src];
                }
            }
        }
    }
    let rows = out_shape.h * out_shape.w;
    let mut out = Tensor::zeros(out_shape, DataLayout::Nhwc);
    for n in 0..out_shape.n {
        let m = im2row(input, p, out_shape, n);
        let mut c = vec![0.0f32; rows * oc];
        gemm.sgemm(rows, patch, oc, &m, &wt, &mut c);
        let dst = &mut out.as_mut_slice()[n * rows * oc..(n + 1) * rows * oc];
        dst.copy_from_slice(&c);
        if !bias.is_empty() {
            for r in 0..rows {
                for ch in 0..oc {
                    dst[r * oc + ch] += bias[ch];
                }
            }
        }
    }
    out
}

/// `kn2row` convolution: one shifted `[OC×IC] · [IC×H*W]` GEMM per kernel
/// tap, accumulated into the output with spatial offset. NCHW in/out.
///
/// Only valid for stride-1 convolutions (the registry enforces this).
///
/// # Panics
///
/// Panics if the convolution stride is not 1 or `input` is not NCHW.
pub fn conv_kn2row_gemm(
    input: &Tensor,
    w: &[f32],
    bias: &[f32],
    p: &ConvParams,
    out_shape: Shape,
    gemm: Gemm,
) -> Tensor {
    assert_eq!(p.stride, (1, 1), "kn2row requires stride 1");
    assert_eq!(
        input.layout(),
        DataLayout::Nchw,
        "kn2row requires NCHW input"
    );
    let in_s = input.shape();
    let (kh, kw) = p.kernel;
    let (ph, pw) = p.pad;
    let (ic, ih, iw) = (in_s.c, in_s.h, in_s.w);
    let oc = out_shape.c;
    let plane = ih * iw;
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);

    // Tap-major weight views: w_k[oc][ic] for each (ky,kx).
    let mut wk = vec![0.0f32; oc * ic];
    let mut r = vec![0.0f32; oc * plane];
    for n in 0..out_shape.n {
        let x = &input.as_slice()[n * ic * plane..(n + 1) * ic * plane];
        // Initialize with bias.
        for ch in 0..oc {
            let b = if bias.is_empty() { 0.0 } else { bias[ch] };
            let dst = &mut out.as_mut_slice()[(n * oc + ch) * out_shape.h * out_shape.w..];
            dst[..out_shape.h * out_shape.w].fill(b);
        }
        for ky in 0..kh {
            for kx in 0..kw {
                for o in 0..oc {
                    for c in 0..ic {
                        wk[o * ic + c] = w[((o * ic + c) * kh + ky) * kw + kx];
                    }
                }
                gemm.sgemm(oc, ic, plane, &wk, x, &mut r);
                // Accumulate shifted: out[y][x] += r[y + ky - ph][x + kx - pw].
                let dy = ky as isize - ph as isize;
                let dx = kx as isize - pw as isize;
                let o_slice = out.as_mut_slice();
                for ch in 0..oc {
                    let r_plane = &r[ch * plane..(ch + 1) * plane];
                    let out_plane = &mut o_slice[(n * oc + ch) * out_shape.h * out_shape.w..];
                    for oy in 0..out_shape.h {
                        let iy = oy as isize + dy;
                        if iy < 0 || iy >= ih as isize {
                            continue;
                        }
                        for ox in 0..out_shape.w {
                            let ix = ox as isize + dx;
                            if ix < 0 || ix >= iw as isize {
                                continue;
                            }
                            out_plane[oy * out_shape.w + ox] +=
                                r_plane[iy as usize * iw + ix as usize];
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::conv_direct::conv_direct_vanilla;
    use qsdnn_gemm::BlasBackend;

    fn reference(input: &Tensor, w: &[f32], bias: &[f32], p: &ConvParams, os: Shape) -> Tensor {
        conv_direct_vanilla(input, w, bias, p, os, DataLayout::Nchw)
    }

    fn fixture(
        k: usize,
        s: usize,
        pad: usize,
        oc: usize,
    ) -> (Tensor, Vec<f32>, Vec<f32>, ConvParams, Shape) {
        let in_s = Shape::new(2, 3, 8, 6);
        let input = Tensor::random(in_s, DataLayout::Nchw, 42);
        let p = ConvParams::square(oc, k, s, pad);
        let os = Shape::new(
            in_s.n,
            oc,
            (in_s.h + 2 * pad - k) / s + 1,
            (in_s.w + 2 * pad - k) / s + 1,
        );
        let w: Vec<f32> = (0..oc * 3 * k * k)
            .map(|i| ((i * 17 + 3) % 11) as f32 * 0.1 - 0.5)
            .collect();
        let bias: Vec<f32> = (0..oc).map(|i| 0.05 * i as f32).collect();
        (input, w, bias, p, os)
    }

    #[test]
    fn im2col_gemm_matches_direct() {
        for (k, s, pad) in [(3, 1, 1), (5, 2, 2), (1, 1, 0), (3, 2, 0)] {
            let (input, w, bias, p, os) = fixture(k, s, pad, 5);
            let expect = reference(&input, &w, &bias, &p, os);
            let got =
                conv_im2col_gemm(&input, &w, &bias, &p, os, Gemm::new(BlasBackend::AtlasLike));
            assert!(
                expect.approx_eq(&got, 1e-4).unwrap(),
                "k={k} s={s} pad={pad}"
            );
        }
    }

    #[test]
    fn im2row_gemm_matches_direct() {
        for (k, s, pad) in [(3, 1, 1), (5, 2, 2), (1, 1, 0)] {
            let (input, w, bias, p, os) = fixture(k, s, pad, 4);
            let expect = reference(&input, &w, &bias, &p, os);
            let got = conv_im2row_gemm(
                &input.to_layout(DataLayout::Nhwc),
                &w,
                &bias,
                &p,
                os,
                Gemm::new(BlasBackend::OpenBlasLike),
            );
            assert!(
                expect.approx_eq(&got, 1e-4).unwrap(),
                "k={k} s={s} pad={pad}"
            );
        }
    }

    #[test]
    fn kn2row_matches_direct_stride1() {
        for (k, pad) in [(3, 1), (1, 0), (5, 2), (3, 0)] {
            let (input, w, bias, p, os) = fixture(k, 1, pad, 6);
            let expect = reference(&input, &w, &bias, &p, os);
            let got =
                conv_kn2row_gemm(&input, &w, &bias, &p, os, Gemm::new(BlasBackend::AtlasLike));
            assert!(expect.approx_eq(&got, 1e-4).unwrap(), "k={k} pad={pad}");
        }
    }

    #[test]
    #[should_panic(expected = "stride 1")]
    fn kn2row_rejects_stride2() {
        let (input, w, bias, p, os) = fixture(3, 2, 1, 2);
        conv_kn2row_gemm(&input, &w, &bias, &p, os, Gemm::new(BlasBackend::AtlasLike));
    }

    #[test]
    fn im2col_matrix_shape_and_content() {
        let in_s = Shape::new(1, 1, 3, 3);
        let input = Tensor::from_fn(in_s, DataLayout::Nchw, |_, _, h, w| (h * 3 + w) as f32);
        let p = ConvParams::square(1, 2, 1, 0);
        let os = Shape::new(1, 1, 2, 2);
        let m = im2col(&input, &p, os, 0);
        // rows = 4 taps, cols = 4 positions. First row: top-left values of
        // each patch = [0, 1, 3, 4].
        assert_eq!(m.len(), 16);
        assert_eq!(&m[0..4], &[0.0, 1.0, 3.0, 4.0]);
    }
}
