//! Fully-connected (inner-product) kernels.

use qsdnn_gemm::Gemm;
use qsdnn_tensor::{DataLayout, Shape, Tensor};

/// Vanilla FC: plain dot-product loops (no blocking, no unrolling), the
/// dependency-free baseline. Input is flattened per batch element; output is
/// an NCHW vector `N×OUT×1×1`.
pub fn fc_vanilla(input: &Tensor, w: &[f32], bias: &[f32], out_shape: Shape) -> Tensor {
    let in_s = input.shape();
    let in_features = in_s.volume() / in_s.n.max(1);
    let out_features = out_shape.c;
    let x_nchw = input.to_layout(DataLayout::Nchw);
    let x = x_nchw.as_slice();
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);
    let o = out.as_mut_slice();
    for n in 0..in_s.n {
        for of in 0..out_features {
            let mut acc = if bias.is_empty() { 0.0 } else { bias[of] };
            let row = &w[of * in_features..(of + 1) * in_features];
            let xv = &x[n * in_features..(n + 1) * in_features];
            for i in 0..in_features {
                acc += row[i] * xv[i];
            }
            o[n * out_features + of] = acc;
        }
    }
    out
}

/// BLAS GEMV FC: `y = W·x` per batch element through the backend's
/// vectorized GEMV routine.
pub fn fc_gemv(input: &Tensor, w: &[f32], bias: &[f32], out_shape: Shape, gemm: Gemm) -> Tensor {
    let in_s = input.shape();
    let in_features = in_s.volume() / in_s.n.max(1);
    let out_features = out_shape.c;
    let x_nchw = input.to_layout(DataLayout::Nchw);
    let mut out = Tensor::zeros(out_shape, DataLayout::Nchw);
    for n in 0..in_s.n {
        let x = &x_nchw.as_slice()[n * in_features..(n + 1) * in_features];
        let y = &mut out.as_mut_slice()[n * out_features..(n + 1) * out_features];
        gemm.sgemv(out_features, in_features, w, x, y);
        if !bias.is_empty() {
            for (yi, b) in y.iter_mut().zip(bias) {
                *yi += b;
            }
        }
    }
    out
}

/// BLAS GEMM FC: the whole batch as one `[N×IN]·[IN×OUT]` product — wins
/// over GEMV once `N > 1`.
pub fn fc_gemm(input: &Tensor, w: &[f32], bias: &[f32], out_shape: Shape, gemm: Gemm) -> Tensor {
    let in_s = input.shape();
    let in_features = in_s.volume() / in_s.n.max(1);
    let out_features = out_shape.c;
    let x_nchw = input.to_layout(DataLayout::Nchw);
    // Transpose W [OUT][IN] -> [IN][OUT].
    let mut wt = vec![0.0f32; in_features * out_features];
    for o in 0..out_features {
        for i in 0..in_features {
            wt[i * out_features + o] = w[o * in_features + i];
        }
    }
    let mut y = vec![0.0f32; in_s.n * out_features];
    gemm.sgemm(
        in_s.n,
        in_features,
        out_features,
        x_nchw.as_slice(),
        &wt,
        &mut y,
    );
    if !bias.is_empty() {
        for n in 0..in_s.n {
            for (o, b) in bias.iter().enumerate() {
                y[n * out_features + o] += b;
            }
        }
    }
    Tensor::from_vec(out_shape, DataLayout::Nchw, y).expect("shape volume matches")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_gemm::BlasBackend;

    fn fixture(batch: usize) -> (Tensor, Vec<f32>, Vec<f32>, Shape) {
        let in_s = Shape::new(batch, 3, 2, 2); // 12 features
        let input = Tensor::random(in_s, DataLayout::Nchw, 31);
        let w: Vec<f32> = (0..5 * 12)
            .map(|i| ((i * 7 + 2) % 9) as f32 * 0.1 - 0.4)
            .collect();
        let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        (input, w, bias, Shape::vector(batch, 5))
    }

    #[test]
    fn gemv_matches_vanilla() {
        let (input, w, bias, os) = fixture(2);
        let a = fc_vanilla(&input, &w, &bias, os);
        let b = fc_gemv(&input, &w, &bias, os, Gemm::new(BlasBackend::AtlasLike));
        assert!(a.approx_eq(&b, 1e-4).unwrap());
    }

    #[test]
    fn gemm_matches_vanilla_batched() {
        let (input, w, bias, os) = fixture(4);
        let a = fc_vanilla(&input, &w, &bias, os);
        let b = fc_gemm(&input, &w, &bias, os, Gemm::new(BlasBackend::OpenBlasLike));
        assert!(a.approx_eq(&b, 1e-4).unwrap());
    }

    #[test]
    fn nhwc_input_is_flattened_in_logical_order() {
        // Flattening must be layout-independent (logical NCHW order), so an
        // NHWC input gives the same result as its NCHW conversion.
        let (input, w, bias, os) = fixture(1);
        let a = fc_vanilla(&input, &w, &bias, os);
        let b = fc_vanilla(&input.to_layout(DataLayout::Nhwc), &w, &bias, os);
        assert!(a.approx_eq(&b, 1e-5).unwrap());
    }

    #[test]
    fn known_values() {
        let input =
            Tensor::from_vec(Shape::vector(1, 2), DataLayout::Nchw, vec![2.0, 3.0]).unwrap();
        let w = vec![1.0, 1.0, 10.0, -1.0];
        let out = fc_vanilla(&input, &w, &[0.5, 0.0], Shape::vector(1, 2));
        assert_eq!(out.as_slice(), &[5.5, 17.0]);
    }
}
