//! Executable layer primitives and the acceleration-library registry of the
//! QS-DNN reproduction.
//!
//! The paper selects, per layer, among primitives drawn from seven
//! acceleration libraries (Vanilla, BLAS/ATLAS, BLAS/OpenBLAS, NNPACK,
//! ArmCL, Sparse, cuDNN, cuBLAS — §III.B). This crate provides:
//!
//! * [`Primitive`] — the (library, algorithm, lowering, BLAS backend,
//!   processor, layout) tuple identifying one implementation choice;
//! * [`registry::candidates`] — the capability matrix: which primitives can
//!   run which layer (with the paper's 13-variant maximum per layer);
//! * [`kernels`] — real, executable Rust implementations of every CPU
//!   algorithm family (direct, im2col/im2row/kn2row + GEMM, Winograd
//!   F(2×2,3×3), optimized depth-wise, sparse CSR, pooling, activations,
//!   FC);
//! * [`exec::execute_layer`] — dispatch from descriptor to kernel.
//!
//! GPU primitives (cuDNN/cuBLAS) execute their reference semantics on the
//! host; their *performance* is modelled by `qsdnn-engine`'s analytical
//! platform (see DESIGN.md §2 for the substitution rationale).
//!
//! # Examples
//!
//! ```
//! use qsdnn_nn::zoo;
//! use qsdnn_primitives::registry;
//!
//! let net = zoo::vgg19(1);
//! // A 3x3/s1 convolution offers the paper's maximum of 13 primitives.
//! let conv1 = &net.layers()[1];
//! assert_eq!(registry::candidates(conv1).len(), 13);
//! ```

pub mod exec;
pub mod kernels;
mod library;
pub mod registry;
pub mod weights;

pub use exec::execute_layer;
pub use library::{Algorithm, Library, Lowering, Primitive, Processor};
pub use weights::{generate as generate_weights, LayerWeights};
