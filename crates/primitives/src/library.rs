use std::fmt;

use serde::{Deserialize, Serialize};

use qsdnn_gemm::BlasBackend;
use qsdnn_tensor::DataLayout;

/// The processor a primitive executes on (paper Table I, "Hardware
/// processor").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Processor {
    /// Single-thread ARM Cortex-A57 class CPU core.
    Cpu,
    /// 256-core Pascal-class embedded GPU.
    Gpu,
}

impl Processor {
    /// Short lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Processor::Cpu => "cpu",
            Processor::Gpu => "gpu",
        }
    }
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Acceleration library (paper §III.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Library {
    /// Dependency-free ANSI-C-style reference functions; supports every
    /// layer and is the paper's baseline.
    Vanilla,
    /// ATLAS/OpenBLAS GEMM/GEMV routines behind `im2col`/`im2row`/`kn2row`
    /// lowerings.
    Blas,
    /// NNPACK-style low-level CPU performance primitives.
    Nnpack,
    /// ArmCL-style NHWC kernels: Winograd, GEMM convolutions and the
    /// optimized depth-wise primitive.
    ArmCl,
    /// Sparse (CSR) implementations for convolution and FC layers.
    Sparse,
    /// cuDNN-style GPU primitives. **No FC primitive**, as the paper
    /// emphasizes.
    CuDnn,
    /// cuBLAS-style GPU BLAS; only the GEMV routine is used (FC layers).
    CuBlas,
}

impl Library {
    /// All libraries, in paper presentation order.
    pub const ALL: [Library; 7] = [
        Library::Vanilla,
        Library::Blas,
        Library::Nnpack,
        Library::ArmCl,
        Library::Sparse,
        Library::CuDnn,
        Library::CuBlas,
    ];

    /// Short lowercase name (stable; used in report tables).
    pub fn name(&self) -> &'static str {
        match self {
            Library::Vanilla => "vanilla",
            Library::Blas => "blas",
            Library::Nnpack => "nnpack",
            Library::ArmCl => "armcl",
            Library::Sparse => "sparse",
            Library::CuDnn => "cudnn",
            Library::CuBlas => "cublas",
        }
    }

    /// Whether any primitive of this library runs on the GPU.
    pub fn is_gpu(&self) -> bool {
        matches!(self, Library::CuDnn | Library::CuBlas)
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Routine family (paper Table I, "Algorithm").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Algorithm {
    /// Straightforward nested-loop implementation.
    Direct,
    /// Register-blocked / hand-optimized direct implementation.
    DirectOpt,
    /// Lowering to matrix multiplication.
    Gemm,
    /// Matrix-vector product (FC layers).
    Gemv,
    /// Winograd `F(2×2, 3×3)` fast convolution.
    Winograd,
    /// Compressed-sparse-row matrix kernels.
    SparseCsr,
}

impl Algorithm {
    /// Short lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Direct => "direct",
            Algorithm::DirectOpt => "direct-opt",
            Algorithm::Gemm => "gemm",
            Algorithm::Gemv => "gemv",
            Algorithm::Winograd => "winograd",
            Algorithm::SparseCsr => "sparse-csr",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Sub-routine / lowering method (paper Table I, "Algorithm impl").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lowering {
    /// No lowering (direct/Winograd/sparse kernels).
    None,
    /// Column-lowering: patches become matrix columns (NCHW-friendly).
    Im2col,
    /// Row-lowering: patches become matrix rows (NHWC-friendly).
    Im2row,
    /// Kernel lowering: one shifted 1×1 GEMM per kernel tap (stride-1 only).
    Kn2row,
}

impl Lowering {
    /// Short lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Lowering::None => "none",
            Lowering::Im2col => "im2col",
            Lowering::Im2row => "im2row",
            Lowering::Kn2row => "kn2row",
        }
    }
}

impl fmt::Display for Lowering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete layer implementation choice — the *action* of the QS-DNN
/// agent and the unit the Phase-1 profiler benchmarks.
///
/// Encodes the full paper Table I tuple minus layer identity: library,
/// algorithm, algorithm impl (lowering), BLAS backend, processor, plus the
/// data layout the kernel consumes and produces.
///
/// # Examples
///
/// ```
/// use qsdnn_primitives::{Algorithm, Library, Lowering, Primitive, Processor};
/// use qsdnn_tensor::DataLayout;
///
/// let p = Primitive::new(
///     Library::ArmCl,
///     Algorithm::Winograd,
///     Lowering::None,
///     None,
///     Processor::Cpu,
///     DataLayout::Nhwc,
/// );
/// assert_eq!(p.to_string(), "armcl/winograd[nhwc@cpu]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Primitive {
    /// Acceleration library.
    pub library: Library,
    /// Routine family.
    pub algorithm: Algorithm,
    /// Sub-routine / lowering method.
    pub lowering: Lowering,
    /// BLAS backend used by GEMM/GEMV lowerings (`None` otherwise).
    pub blas: Option<BlasBackend>,
    /// Executing processor.
    pub processor: Processor,
    /// Data layout consumed and produced.
    pub layout: DataLayout,
}

impl Primitive {
    /// Creates a primitive descriptor.
    pub fn new(
        library: Library,
        algorithm: Algorithm,
        lowering: Lowering,
        blas: Option<BlasBackend>,
        processor: Processor,
        layout: DataLayout,
    ) -> Self {
        Primitive {
            library,
            algorithm,
            lowering,
            blas,
            processor,
            layout,
        }
    }

    /// Convenience constructor for Vanilla direct CPU/NCHW primitives.
    pub fn vanilla() -> Self {
        Primitive::new(
            Library::Vanilla,
            Algorithm::Direct,
            Lowering::None,
            None,
            Processor::Cpu,
            DataLayout::Nchw,
        )
    }

    /// Compact display label, e.g. `blas/gemm+im2col(openblas)[nchw@cpu]`.
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}", self.library, self.algorithm);
        if self.lowering != Lowering::None {
            s.push('+');
            s.push_str(self.lowering.name());
        }
        if let Some(b) = self.blas {
            s.push('(');
            s.push_str(b.name());
            s.push(')');
        }
        s.push_str(&format!("[{}@{}]", self.layout, self.processor));
        s
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_constructor() {
        let v = Primitive::vanilla();
        assert_eq!(v.library, Library::Vanilla);
        assert_eq!(v.processor, Processor::Cpu);
        assert_eq!(v.layout, DataLayout::Nchw);
    }

    #[test]
    fn labels_include_blas_backend() {
        let p = Primitive::new(
            Library::Blas,
            Algorithm::Gemm,
            Lowering::Im2col,
            Some(BlasBackend::OpenBlasLike),
            Processor::Cpu,
            DataLayout::Nchw,
        );
        assert_eq!(p.to_string(), "blas/gemm+im2col(openblas)[nchw@cpu]");
    }

    #[test]
    fn gpu_libraries_flagged() {
        assert!(Library::CuDnn.is_gpu());
        assert!(Library::CuBlas.is_gpu());
        assert!(!Library::ArmCl.is_gpu());
    }

    #[test]
    fn primitives_are_hashable_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Primitive::vanilla());
        set.insert(Primitive::vanilla());
        assert_eq!(set.len(), 1);
    }
}
