//! Enumerates which primitives can implement which layer — the library
//! capability matrix of paper §III.B.
//!
//! The capability holes are load-bearing for the paper's results:
//!
//! * cuDNN has **no FC primitive** (why cuDNN-only loses on AlexNet/VGG-19);
//! * cuBLAS offers **only GEMV**, used for FC;
//! * Winograd applies only to 3×3 stride-1 convolutions;
//! * `kn2row` applies only to stride-1 convolutions;
//! * NNPACK pooling supports only the 2×2/s2 max-pool fast path;
//! * Sparse kernels cover FC and 1×1 (pointwise) convolutions.

use qsdnn_gemm::BlasBackend;
use qsdnn_nn::{LayerKind, Node, PoolKind};
use qsdnn_tensor::DataLayout;

use crate::{Algorithm, Library, Lowering, Primitive, Processor};

use DataLayout::{Nchw, Nhwc};
use Processor::{Cpu, Gpu};

fn prim(
    library: Library,
    algorithm: Algorithm,
    lowering: Lowering,
    blas: Option<BlasBackend>,
    processor: Processor,
    layout: DataLayout,
) -> Primitive {
    Primitive::new(library, algorithm, lowering, blas, processor, layout)
}

/// All primitives able to implement `node`, Vanilla first.
///
/// The Vanilla fallback exists for every layer kind (paper §V.A: "it
/// contains all layers that a DNN may use"), so the returned list is never
/// empty. For a 3×3 stride-1 convolution the list has exactly 13 entries —
/// the paper's quoted maximum.
pub fn candidates(node: &Node) -> Vec<Primitive> {
    let mut out = Vec::new();
    match &node.desc.kind {
        LayerKind::Input => {
            // Pseudo-layer: network input arrives in host NCHW memory.
            out.push(Primitive::vanilla());
        }
        LayerKind::Conv(p) => {
            let is_3x3_s1 = p.kernel == (3, 3) && p.stride == (1, 1);
            let is_s1 = p.stride == (1, 1);
            let is_1x1 = p.kernel == (1, 1);
            out.push(Primitive::vanilla());
            for blas in BlasBackend::ALL {
                out.push(prim(
                    Library::Blas,
                    Algorithm::Gemm,
                    Lowering::Im2col,
                    Some(blas),
                    Cpu,
                    Nchw,
                ));
                out.push(prim(
                    Library::Blas,
                    Algorithm::Gemm,
                    Lowering::Im2row,
                    Some(blas),
                    Cpu,
                    Nhwc,
                ));
                if is_s1 {
                    out.push(prim(
                        Library::Blas,
                        Algorithm::Gemm,
                        Lowering::Kn2row,
                        Some(blas),
                        Cpu,
                        Nchw,
                    ));
                }
            }
            out.push(prim(
                Library::Nnpack,
                Algorithm::DirectOpt,
                Lowering::None,
                None,
                Cpu,
                Nchw,
            ));
            if is_3x3_s1 {
                out.push(prim(
                    Library::Nnpack,
                    Algorithm::Winograd,
                    Lowering::None,
                    None,
                    Cpu,
                    Nchw,
                ));
                out.push(prim(
                    Library::ArmCl,
                    Algorithm::Winograd,
                    Lowering::None,
                    None,
                    Cpu,
                    Nhwc,
                ));
            }
            out.push(prim(
                Library::ArmCl,
                Algorithm::Gemm,
                Lowering::Im2row,
                None,
                Cpu,
                Nhwc,
            ));
            if is_1x1 {
                out.push(prim(
                    Library::Sparse,
                    Algorithm::SparseCsr,
                    Lowering::None,
                    None,
                    Cpu,
                    Nchw,
                ));
            }
            out.push(prim(
                Library::CuDnn,
                Algorithm::Gemm,
                Lowering::Im2col,
                None,
                Gpu,
                Nchw,
            ));
            if is_3x3_s1 {
                out.push(prim(
                    Library::CuDnn,
                    Algorithm::Winograd,
                    Lowering::None,
                    None,
                    Gpu,
                    Nchw,
                ));
            }
        }
        LayerKind::DepthwiseConv(_) => {
            out.push(Primitive::vanilla());
            out.push(prim(
                Library::ArmCl,
                Algorithm::DirectOpt,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::Pool(p) => {
            out.push(Primitive::vanilla());
            let nnpack_fast_path =
                p.kind == PoolKind::Max && p.kernel == (2, 2) && p.stride == (2, 2) && !p.global;
            if nnpack_fast_path {
                out.push(prim(
                    Library::Nnpack,
                    Algorithm::DirectOpt,
                    Lowering::None,
                    None,
                    Cpu,
                    Nchw,
                ));
            }
            out.push(prim(
                Library::ArmCl,
                Algorithm::DirectOpt,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::Relu => {
            out.push(Primitive::vanilla());
            out.push(prim(
                Library::Vanilla,
                Algorithm::Direct,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::ArmCl,
                Algorithm::DirectOpt,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::BatchNorm => {
            out.push(Primitive::vanilla());
            out.push(prim(
                Library::Vanilla,
                Algorithm::Direct,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::ArmCl,
                Algorithm::DirectOpt,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::Lrn(_) => {
            out.push(Primitive::vanilla());
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::Fc(_) => {
            out.push(prim(
                Library::Vanilla,
                Algorithm::Gemv,
                Lowering::None,
                None,
                Cpu,
                Nchw,
            ));
            for blas in BlasBackend::ALL {
                out.push(prim(
                    Library::Blas,
                    Algorithm::Gemv,
                    Lowering::None,
                    Some(blas),
                    Cpu,
                    Nchw,
                ));
                out.push(prim(
                    Library::Blas,
                    Algorithm::Gemm,
                    Lowering::None,
                    Some(blas),
                    Cpu,
                    Nchw,
                ));
            }
            out.push(prim(
                Library::Sparse,
                Algorithm::SparseCsr,
                Lowering::None,
                None,
                Cpu,
                Nchw,
            ));
            // Paper: cuDNN "does not include a specific implementation for
            // FC layer"; cuBLAS GEMV is the only GPU option.
            out.push(prim(
                Library::CuBlas,
                Algorithm::Gemv,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::Softmax => {
            out.push(Primitive::vanilla());
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::Concat => {
            out.push(Primitive::vanilla());
            out.push(prim(
                Library::Vanilla,
                Algorithm::Direct,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
        LayerKind::Add => {
            out.push(Primitive::vanilla());
            out.push(prim(
                Library::Vanilla,
                Algorithm::Direct,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::ArmCl,
                Algorithm::DirectOpt,
                Lowering::None,
                None,
                Cpu,
                Nhwc,
            ));
            out.push(prim(
                Library::CuDnn,
                Algorithm::Direct,
                Lowering::None,
                None,
                Gpu,
                Nchw,
            ));
        }
    }
    out
}

/// The subset of [`candidates`] belonging to `library`.
///
/// Used by the Phase-1 profiler's single-library sweeps ("substituting
/// Vanilla for the chosen primitive type in all those layers where the
/// acceleration library is able to implement such primitive").
pub fn candidates_of_library(node: &Node, library: Library) -> Vec<Primitive> {
    candidates(node)
        .into_iter()
        .filter(|p| p.library == library)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_nn::{ConvParams, FcParams, NetworkBuilder};
    use qsdnn_tensor::Shape;

    fn conv_node(k: usize, s: usize) -> qsdnn_nn::Network {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 8, 16, 16));
        b.conv("c", x, ConvParams::square(8, k, s, k / 2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn conv_3x3_s1_has_exactly_13_variants() {
        let net = conv_node(3, 1);
        assert_eq!(candidates(&net.layers()[1]).len(), 13);
    }

    #[test]
    fn strided_conv_loses_winograd_and_kn2row() {
        let net = conv_node(3, 2);
        let c = candidates(&net.layers()[1]);
        assert!(c.iter().all(|p| p.algorithm != Algorithm::Winograd));
        assert!(c.iter().all(|p| p.lowering != Lowering::Kn2row));
    }

    #[test]
    fn pointwise_conv_gains_sparse() {
        let net = conv_node(1, 1);
        let c = candidates(&net.layers()[1]);
        assert!(c.iter().any(|p| p.library == Library::Sparse));
    }

    #[test]
    fn fc_has_no_cudnn_but_has_cublas() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 64, 4, 4));
        b.fc("fc", x, FcParams::new(100)).unwrap();
        let net = b.build().unwrap();
        let c = candidates(&net.layers()[1]);
        assert!(c.iter().all(|p| p.library != Library::CuDnn));
        assert!(c.iter().any(|p| p.library == Library::CuBlas));
    }

    #[test]
    fn every_layer_kind_has_vanilla_first() {
        let net = qsdnn_nn::zoo::paper_roster(1);
        for n in &net {
            for node in n.layers() {
                let c = candidates(node);
                assert!(!c.is_empty(), "{}", node.desc.name);
                assert_eq!(c[0].library, Library::Vanilla, "{}", node.desc.name);
            }
        }
    }

    #[test]
    fn max_variants_over_roster_is_13() {
        let max = qsdnn_nn::zoo::paper_roster(1)
            .iter()
            .flat_map(|n| n.layers().iter().map(|node| candidates(node).len()))
            .max()
            .unwrap();
        assert_eq!(
            max, 13,
            "paper: maximum number of primitives per layer is 13"
        );
    }

    #[test]
    fn single_library_filter() {
        let net = conv_node(3, 1);
        let blas = candidates_of_library(&net.layers()[1], Library::Blas);
        assert_eq!(blas.len(), 6);
        assert!(blas.iter().all(|p| p.library == Library::Blas));
    }

    #[test]
    fn nnpack_pool_only_on_2x2_s2_max() {
        use qsdnn_nn::{PoolKind, PoolParams};
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 8, 16, 16));
        let fast = b
            .pool("fast", x, PoolParams::square(PoolKind::Max, 2, 2, 0))
            .unwrap();
        let slow = b
            .pool("slow", x, PoolParams::square(PoolKind::Max, 3, 2, 0))
            .unwrap();
        let net = b.build().unwrap();
        let has_nnpack = |id: qsdnn_nn::LayerId| {
            candidates(net.node(id))
                .iter()
                .any(|p| p.library == Library::Nnpack)
        };
        assert!(has_nnpack(fast));
        assert!(!has_nnpack(slow));
    }
}
