//! Dispatch from a [`Primitive`] descriptor to the executable kernel.

use qsdnn_gemm::{BlasBackend, Gemm};
use qsdnn_nn::{LayerKind, Node};
use qsdnn_tensor::{DataLayout, Tensor};

use crate::kernels::{
    activation, conv_direct, depthwise, eltwise, fc, lowering, pool, sparse, winograd,
};
use crate::{Algorithm, LayerWeights, Library, Lowering, Primitive};

fn ensure_layout(t: Tensor, layout: DataLayout) -> Tensor {
    if t.layout() == layout {
        t
    } else {
        t.to_layout(layout)
    }
}

fn gemm_of(primitive: &Primitive) -> Gemm {
    // Library-internal GEMMs (ArmCL, simulated cuDNN) use the packed kernel.
    Gemm::new(primitive.blas.unwrap_or(BlasBackend::OpenBlasLike))
}

/// Executes `node` with the chosen `primitive`.
///
/// `inputs` must already be in `primitive.layout` (the engine's executor
/// inserts compatibility layers beforehand); the result is returned in
/// `primitive.layout`. GPU primitives execute their reference semantics on
/// the host — the *cost* of the GPU is modelled by the platform layer, not
/// here (DESIGN.md §2).
///
/// # Panics
///
/// Panics if the primitive cannot implement the layer kind (the registry
/// guarantees it can) or required weights are missing.
pub fn execute_layer(
    node: &Node,
    primitive: &Primitive,
    inputs: &[&Tensor],
    weights: &LayerWeights,
) -> Tensor {
    let out_shape = node.output_shape;
    let out = match &node.desc.kind {
        LayerKind::Input => inputs[0].clone(),
        LayerKind::Conv(p) => {
            let x = inputs[0];
            match (primitive.algorithm, primitive.lowering) {
                (Algorithm::Direct, _) => conv_direct::conv_direct_vanilla(
                    x,
                    &weights.w,
                    &weights.bias,
                    p,
                    out_shape,
                    primitive.layout,
                ),
                (Algorithm::DirectOpt, _) => {
                    let x = ensure_layout(x.clone(), DataLayout::Nchw);
                    conv_direct::conv_direct_opt(&x, &weights.w, &weights.bias, p, out_shape)
                }
                (Algorithm::Gemm, Lowering::Im2col) => {
                    let x = ensure_layout(x.clone(), DataLayout::Nchw);
                    lowering::conv_im2col_gemm(
                        &x,
                        &weights.w,
                        &weights.bias,
                        p,
                        out_shape,
                        gemm_of(primitive),
                    )
                }
                (Algorithm::Gemm, Lowering::Im2row) => {
                    let x = ensure_layout(x.clone(), DataLayout::Nhwc);
                    lowering::conv_im2row_gemm(
                        &x,
                        &weights.w,
                        &weights.bias,
                        p,
                        out_shape,
                        gemm_of(primitive),
                    )
                }
                (Algorithm::Gemm, Lowering::Kn2row) => {
                    let x = ensure_layout(x.clone(), DataLayout::Nchw);
                    lowering::conv_kn2row_gemm(
                        &x,
                        &weights.w,
                        &weights.bias,
                        p,
                        out_shape,
                        gemm_of(primitive),
                    )
                }
                (Algorithm::Winograd, _) => {
                    let x = ensure_layout(x.clone(), DataLayout::Nchw);
                    winograd::conv_winograd(&x, &weights.w, &weights.bias, p, out_shape)
                }
                (Algorithm::SparseCsr, _) => {
                    let x = ensure_layout(x.clone(), DataLayout::Nchw);
                    sparse::conv1x1_sparse(&x, &weights.w, &weights.bias, p, out_shape)
                }
                (alg, low) => panic!("no conv kernel for {alg}/{low}"),
            }
        }
        LayerKind::DepthwiseConv(p) => {
            let x = inputs[0];
            match primitive.algorithm {
                Algorithm::Direct => depthwise::depthwise_vanilla(
                    x,
                    &weights.w,
                    &weights.bias,
                    p,
                    out_shape,
                    primitive.layout,
                ),
                Algorithm::DirectOpt => {
                    let x = ensure_layout(x.clone(), DataLayout::Nhwc);
                    depthwise::depthwise_opt_nhwc(&x, &weights.w, &weights.bias, p, out_shape)
                }
                alg => panic!("no depthwise kernel for {alg}"),
            }
        }
        LayerKind::Pool(p) => {
            let x = inputs[0];
            let nnpack_fast =
                primitive.library == Library::Nnpack && primitive.algorithm == Algorithm::DirectOpt;
            if nnpack_fast {
                let x = ensure_layout(x.clone(), DataLayout::Nchw);
                pool::maxpool_2x2_s2_nchw(&x, out_shape)
            } else {
                pool::pool_generic(x, p, out_shape, primitive.layout)
            }
        }
        LayerKind::Relu => activation::relu(inputs[0]),
        LayerKind::BatchNorm => activation::batch_norm(inputs[0], &weights.scale, &weights.shift),
        LayerKind::Lrn(p) => activation::lrn(inputs[0], p),
        LayerKind::Softmax => activation::softmax(inputs[0]),
        LayerKind::Fc(_) => {
            let x = inputs[0];
            match (primitive.library, primitive.algorithm) {
                (Library::Vanilla, Algorithm::Gemv) => {
                    fc::fc_vanilla(x, &weights.w, &weights.bias, out_shape)
                }
                (_, Algorithm::Gemv) => {
                    fc::fc_gemv(x, &weights.w, &weights.bias, out_shape, gemm_of(primitive))
                }
                (_, Algorithm::Gemm) => {
                    fc::fc_gemm(x, &weights.w, &weights.bias, out_shape, gemm_of(primitive))
                }
                (_, Algorithm::SparseCsr) => {
                    sparse::fc_sparse(x, &weights.w, &weights.bias, out_shape)
                }
                (lib, alg) => panic!("no fc kernel for {lib}/{alg}"),
            }
        }
        LayerKind::Concat => eltwise::concat(inputs, primitive.layout),
        LayerKind::Add => eltwise::add(inputs[0], inputs[1], primitive.layout),
    };
    ensure_layout(out, primitive.layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{registry, weights};
    use qsdnn_nn::zoo;

    /// Every candidate primitive of every layer of `tiny_cnn` must produce
    /// the same logical output as the Vanilla choice.
    #[test]
    fn all_primitives_agree_on_tiny_cnn() {
        let net = zoo::tiny_cnn(1);
        // Reference forward pass, all-Vanilla.
        let mut acts: Vec<Tensor> = Vec::new();
        let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 99);
        for node in net.layers() {
            let in_shapes = net.input_shapes(node.id);
            let lw = weights::generate(node, &in_shapes, 7);
            let cands = registry::candidates(node);
            let vanilla = cands[0];
            let parents: Vec<&Tensor> = if node.inputs.is_empty() {
                vec![&input]
            } else {
                node.inputs.iter().map(|p| &acts[p.0]).collect()
            };
            // Inputs must be in each primitive's layout.
            let reference = {
                let converted: Vec<Tensor> = parents
                    .iter()
                    .map(|t| t.to_layout(vanilla.layout))
                    .collect();
                let refs: Vec<&Tensor> = converted.iter().collect();
                execute_layer(node, &vanilla, &refs, &lw)
            };
            for prim in &cands[1..] {
                let converted: Vec<Tensor> =
                    parents.iter().map(|t| t.to_layout(prim.layout)).collect();
                let refs: Vec<&Tensor> = converted.iter().collect();
                let got = execute_layer(node, prim, &refs, &lw);
                let d = reference.max_abs_diff(&got).unwrap();
                assert!(d < 1e-2, "{}: {prim} differs by {d}", node.desc.name);
            }
            acts.push(reference);
        }
    }

    #[test]
    fn output_layout_always_matches_primitive() {
        let net = zoo::tiny_cnn(1);
        let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 1);
        let mut acts: Vec<Tensor> = Vec::new();
        for node in net.layers() {
            let in_shapes = net.input_shapes(node.id);
            let lw = weights::generate(node, &in_shapes, 7);
            for prim in registry::candidates(node) {
                let parents: Vec<Tensor> = if node.inputs.is_empty() {
                    vec![input.to_layout(prim.layout)]
                } else {
                    node.inputs
                        .iter()
                        .map(|p| acts[p.0].to_layout(prim.layout))
                        .collect()
                };
                let refs: Vec<&Tensor> = parents.iter().collect();
                let out = execute_layer(node, &prim, &refs, &lw);
                assert_eq!(out.layout(), prim.layout, "{}: {prim}", node.desc.name);
                assert_eq!(out.shape(), node.output_shape);
            }
            // Advance with vanilla.
            let prim = registry::candidates(node)[0];
            let parents: Vec<Tensor> = if node.inputs.is_empty() {
                vec![input.to_layout(prim.layout)]
            } else {
                node.inputs
                    .iter()
                    .map(|p| acts[p.0].to_layout(prim.layout))
                    .collect()
            };
            let refs: Vec<&Tensor> = parents.iter().collect();
            acts.push(execute_layer(node, &prim, &refs, &lw));
        }
    }
}
