//! Named instrument catalog and point-in-time snapshots.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::{Counter, Gauge};

/// What kind of instrument a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic count.
    Counter,
    /// Signed level.
    Gauge,
    /// Latency distribution.
    Histogram,
}

impl Kind {
    /// Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Sample {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    samples: Vec<Sample>,
}

/// A catalog of named instruments.
///
/// Register-or-reuse semantics: asking for the same `(name, labels)` pair
/// twice returns the same underlying instrument, so call sites don't need
/// to coordinate initialization. Registration takes a mutex; the returned
/// `Arc` should be cached by anything on a hot path.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.families.lock().map(|fams| fams.len()).unwrap_or(0);
        f.debug_struct("Registry").field("families", &n).finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn instrument<T, New, Pick>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        new: New,
        pick: Pick,
    ) -> Arc<T>
    where
        New: FnOnce() -> Instrument,
        Pick: Fn(&Instrument) -> Option<Arc<T>>,
    {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric family {name:?} re-registered as a different kind"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(sample) = family.samples.iter().find(|s| s.labels == labels) {
            return pick(&sample.instrument)
                .expect("family kind already checked, sample kind matches");
        }
        let instrument = new();
        let picked = pick(&instrument).expect("freshly built instrument matches its kind");
        family.samples.push(Sample { labels, instrument });
        picked
    }

    /// Registers (or fetches) a counter sample.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.instrument(
            name,
            help,
            Kind::Counter,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a gauge sample.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.instrument(
            name,
            help,
            Kind::Gauge,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a histogram sample.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.instrument(
            name,
            help,
            Kind::Histogram,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Copies every registered instrument's current value.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().expect("registry poisoned");
        Snapshot {
            families: families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    samples: f
                        .samples
                        .iter()
                        .map(|s| SampleSnapshot {
                            labels: s.labels.clone(),
                            value: match &s.instrument {
                                Instrument::Counter(c) => SampleValue::Counter(c.get()),
                                Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                                Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One sample's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// One labeled sample inside a family.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSnapshot {
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The recorded value.
    pub value: SampleValue,
}

/// All samples of one named metric.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric family name (e.g. `qsdnn_request_us`).
    pub name: String,
    /// Human-readable description (`# HELP` line).
    pub help: String,
    /// Instrument kind (`# TYPE` line).
    pub kind: Kind,
    /// Every labeled sample registered under this name.
    pub samples: Vec<SampleSnapshot>,
}

/// A point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Families in registration order.
    pub families: Vec<FamilySnapshot>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Appends another snapshot's families, merging same-name families by
    /// concatenating their samples.
    pub fn merge(&mut self, other: Snapshot) {
        for family in other.families {
            match self.families.iter_mut().find(|f| f.name == family.name) {
                Some(mine) => mine.samples.extend(family.samples),
                None => self.families.push(family),
            }
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, one line per sample,
    /// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`. Empty histogram buckets are elided; the cumulative
    /// counts stay correct.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                family.name,
                family.kind.as_str()
            ));
            for sample in &family.samples {
                match &sample.value {
                    SampleValue::Counter(v) => {
                        let labels = render_labels(&sample.labels, None);
                        out.push_str(&format!("{}{labels} {v}\n", family.name));
                    }
                    SampleValue::Gauge(v) => {
                        let labels = render_labels(&sample.labels, None);
                        out.push_str(&format!("{}{labels} {v}\n", family.name));
                    }
                    SampleValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (_, upper, n) in h.nonzero_buckets() {
                            cumulative += n;
                            let labels =
                                render_labels(&sample.labels, Some(("le", &upper.to_string())));
                            out.push_str(&format!("{}_bucket{labels} {cumulative}\n", family.name));
                        }
                        let inf = render_labels(&sample.labels, Some(("le", "+Inf")));
                        out.push_str(&format!("{}_bucket{inf} {}\n", family.name, h.count()));
                        let labels = render_labels(&sample.labels, None);
                        out.push_str(&format!("{}_sum{labels} {}\n", family.name, h.sum()));
                        out.push_str(&format!("{}_count{labels} {}\n", family.name, h.count()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_or_reuse_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x_total", "a thing", &[("kind", "plan")]);
        let b = r.counter("x_total", "a thing", &[("kind", "plan")]);
        let other = r.counter("x_total", "a thing", &[("kind", "ping")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("y_total", "counts", &[]);
        r.gauge("y_total", "levels", &[]);
    }

    #[test]
    fn snapshot_carries_all_kinds() {
        let r = Registry::new();
        r.counter("c_total", "counts", &[]).add(7);
        r.gauge("g", "level", &[("pool", "search")]).set(-4);
        r.histogram("h_us", "latency", &[]).record(100);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 3);
        assert_eq!(snap.families[0].samples[0].value, SampleValue::Counter(7));
        assert_eq!(snap.families[1].samples[0].value, SampleValue::Gauge(-4));
        match &snap.families[2].samples[0].value {
            SampleValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_renders_every_kind() {
        let r = Registry::new();
        r.counter("req_total", "requests served", &[("kind", "plan")])
            .add(2);
        r.gauge("depth", "queue depth", &[]).set(5);
        let h = r.histogram("lat_us", "latency micros", &[]);
        h.record(3);
        h.record(100);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# HELP req_total requests served\n"));
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{kind=\"plan\"} 2\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth 5\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum 103\n"));
        assert!(text.contains("lat_us_count 2\n"));
    }

    #[test]
    fn merge_concatenates_and_groups_families() {
        let a = Registry::new();
        a.counter("shared_total", "shared", &[("src", "a")]).inc();
        let b = Registry::new();
        b.counter("shared_total", "shared", &[("src", "b")]).add(2);
        b.gauge("only_b", "only in b", &[]).set(1);
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        assert_eq!(snap.families.len(), 2);
        assert_eq!(snap.families[0].samples.len(), 2);
    }
}
