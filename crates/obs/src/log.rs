//! Leveled structured event logging: one JSON object per line.
//!
//! The default sink is stderr, so service logs interleave cleanly with
//! whatever supervisor captures them. The level comes from the
//! `QSDNN_LOG` environment variable (`error`, `warn`, `info`, `debug`,
//! `trace`; default `warn`) and can be overridden at runtime with
//! [`set_level`]. Tests can capture events in-process with
//! [`capture_to`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The service is broken or dropping work.
    Error = 0,
    /// Something degraded that a human should eventually look at.
    Warn = 1,
    /// Lifecycle events (startup, shutdown, listener addresses).
    Info = 2,
    /// Per-request diagnostics.
    Debug = 3,
    /// Hot-path tracing; very chatty.
    Trace = 4,
}

impl Level {
    /// Lowercase name, as it appears in log lines and `QSDNN_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `QSDNN_LOG` value; unknown strings disable nothing and
    /// fall back to the default (`warn`).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

fn level_cell() -> &'static AtomicU8 {
    static LEVEL: OnceLock<AtomicU8> = OnceLock::new();
    LEVEL.get_or_init(|| {
        let initial = std::env::var("QSDNN_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Warn);
        AtomicU8::new(initial as u8)
    })
}

/// The current log level.
pub fn level() -> Level {
    match level_cell().load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Overrides the log level at runtime (wins over `QSDNN_LOG`).
pub fn set_level(l: Level) {
    level_cell().store(l as u8, Ordering::Relaxed);
}

/// Whether events at `l` are currently emitted.
pub fn enabled(l: Level) -> bool {
    l <= level()
}

type Sink = Box<dyn Fn(&str) + Send>;

fn sink_cell() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Redirects log lines to `f` instead of stderr (process-wide; used by
/// tests to assert on emitted events). Pass-through ends when
/// [`capture_to_stderr`] restores the default.
pub fn capture_to(f: impl Fn(&str) + Send + 'static) {
    *sink_cell().lock().expect("log sink poisoned") = Some(Box::new(f));
}

/// Restores the default stderr sink.
pub fn capture_to_stderr() {
    *sink_cell().lock().expect("log sink poisoned") = None;
}

/// A field value in a structured event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with up to 3 decimal places).
    F64(f64),
    /// String (JSON-escaped).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emits one structured event if `level` is enabled.
///
/// The line is a single JSON object: timestamp, level, event name, then
/// the given fields in order.
// stderr IS the default sink here: structured logs are this module's
// entire purpose, unlike stray debug prints elsewhere in the workspace.
#[allow(clippy::print_stderr)]
pub fn event(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format!(
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"event\":\"{}\"",
        level.as_str(),
        escape_json(name)
    );
    for (key, value) in fields {
        line.push_str(&format!(",\"{}\":", escape_json(key)));
        match value {
            FieldValue::U64(v) => line.push_str(&v.to_string()),
            FieldValue::I64(v) => line.push_str(&v.to_string()),
            FieldValue::F64(v) => line.push_str(&format!("{v:.3}")),
            FieldValue::Str(v) => line.push_str(&format!("\"{}\"", escape_json(v))),
            FieldValue::Bool(v) => line.push_str(&v.to_string()),
        }
    }
    line.push('}');
    let sink = sink_cell().lock().expect("log sink poisoned");
    match sink.as_ref() {
        Some(f) => f(&line),
        None => eprintln!("{line}"),
    }
}

/// Shorthand for a warn-level event.
pub fn warn(name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Warn, name, fields);
}

/// Shorthand for an info-level event.
pub fn info(name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Info, name, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn events_render_as_json_lines_and_respect_the_level() {
        let (tx, rx) = mpsc::channel::<String>();
        capture_to(move |line| {
            let _ = tx.send(line.to_string());
        });
        set_level(Level::Info);
        event(
            Level::Info,
            "test_event",
            &[
                ("count", FieldValue::from(3u64)),
                ("name", FieldValue::from("say \"hi\"")),
                ("ok", FieldValue::from(true)),
            ],
        );
        event(Level::Debug, "suppressed", &[]);
        capture_to_stderr();
        set_level(Level::Warn);
        let line = rx.recv().expect("captured event");
        assert!(line.starts_with("{\"ts_ms\":"), "line: {line}");
        assert!(line.contains("\"event\":\"test_event\""));
        assert!(line.contains("\"count\":3"));
        assert!(line.contains("\"name\":\"say \\\"hi\\\"\""));
        assert!(line.ends_with("\"ok\":true}"));
        assert!(rx.try_recv().is_err(), "debug event must be suppressed");
    }
}
