//! Observability core for the QS-DNN workspace.
//!
//! Three pieces, all dependency-free:
//!
//! - **Instruments** — [`Counter`] (monotonic `u64`), [`Gauge`] (signed
//!   level), and [`Histogram`] (log-linear bucketed latency distribution
//!   with mergeable [`HistogramSnapshot`]s and p50/p90/p99/p999
//!   extraction). All are lock-free atomics, safe to share via `Arc`
//!   across worker pools and the reactor thread.
//! - **[`Registry`]** — a named catalog of instruments that renders
//!   point-in-time [`Snapshot`]s, including Prometheus text exposition.
//!   A process-global registry ([`global`]) serves library-level
//!   instrumentation (search episode counters, profiler timings); anything
//!   that needs isolation (one server per test) owns its own `Registry`.
//! - **[`log`]** — leveled structured events as JSON lines on stderr,
//!   gated by the `QSDNN_LOG` environment variable.
//! - **[`recorder`]** — the flight recorder: per-thread ring buffers of
//!   structured events, a live task table, and bounded slow-request
//!   exemplars, linking aggregate histograms to concrete traces.
//!
//! Recording on the hot path is one relaxed atomic add (plus one for the
//! histogram sum); snapshotting is the only operation that takes a lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;

mod hist;
pub mod log;
pub mod recorder;
mod registry;

pub use hist::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use recorder::{Event, EventKind, Exemplar, FlightRecorder, RequestScope, TaskSnapshot};
pub use registry::{FamilySnapshot, Kind, Registry, SampleSnapshot, SampleValue, Snapshot};

/// A monotonically increasing event count.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level that can move both ways (queue depth, open connections,
/// high-water marks via [`Gauge::set_max`]).
///
/// Like [`Counter`], every operation is a relaxed atomic: gauges report
/// state, they never order it. Code that needs a synchronizing flag
/// (e.g. the server's shutdown latch) owns its own atomic with the
/// ordering it actually requires.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raises the level to `v` if it is below (a high-water mark).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The process-global registry for library-level instrumentation.
///
/// Servers and anything else that needs per-instance isolation should own
/// a [`Registry`] instead and merge this one into their snapshot at scrape
/// time.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways_and_tracks_high_water() {
        let g = Gauge::new();
        g.inc();
        g.add(5);
        g.dec();
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5, "set_max never lowers");
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn global_registry_is_shared() {
        let a = global().counter("qsdnn_obs_test_global_total", "test counter", &[]);
        let b = global().counter("qsdnn_obs_test_global_total", "test counter", &[]);
        a.inc();
        assert!(b.get() >= 1, "same instrument behind both handles");
    }
}
