//! Flight recorder: an always-on, fixed-capacity journal of compact
//! structured events plus a cooperative live task table.
//!
//! Aggregate histograms (see [`crate::Histogram`]) say *that* a tail
//! latency happened; the flight recorder says *what the server was doing*
//! when it happened. Three pieces:
//!
//! - **Event rings** — every thread that emits gets its own fixed-capacity
//!   ring of [`Event`]s. A ring has exactly one writer (its owning
//!   thread), so writes are a handful of relaxed atomic stores guarded by
//!   a per-slot seqlock; readers ([`FlightRecorder::snapshot_events`])
//!   never block writers and detect torn slots instead of locking them
//!   out. Rings of exited threads are recycled for new threads, so memory
//!   is bounded by peak thread concurrency, not thread churn.
//! - **Task table** — one slot per live emitting thread recording what it
//!   is doing *right now* (task kind, request serial, stage, subject key,
//!   since-when). Updates are relaxed stores; snapshots are a lock-free
//!   read per slot.
//! - **Exemplars** — a bounded last-K-per-kind store of journal excerpts.
//!   When a request turns out slow (or its handler panics), the events
//!   carrying its serial are snapshotted out of the rings and retained,
//!   linking histogram tails to concrete traces.
//!
//! Event semantics are the caller's: `kind` is a [`EventKind`], and
//! `key`/`a`/`b` are kind-specific payloads (the serve crate packs plan
//! cache keys, stage ids, shard indices, donor distances). The recorder
//! itself only timestamps, stores and returns them.
//!
//! Request correlation uses a thread-local current-serial: a dispatcher
//! wraps request handling in [`FlightRecorder::begin_request`], and every
//! [`FlightRecorder::emit`] on that thread (cache lookups, transfer
//! donors, ...) inherits the serial without any parameter plumbing.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Events retained per thread ring. At ~10 events per request this is the
/// last ~100 requests each thread touched — enough journal to explain any
/// slow request while keeping a ring at 56 KiB.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Slow/panic exemplars retained per request kind.
pub const EXEMPLARS_PER_KIND: usize = 4;

/// Hook entries kept per thread before dead-recorder entries are pruned.
const HOOK_PRUNE_LEN: usize = 8;

/// What one journal event records. The numeric payloads (`key`, `a`, `b`)
/// are kind-specific; consumers decode them (see the serve crate's wire
/// `EventMsg` for the canonical decoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EventKind {
    /// A request entered dispatch. `a` = request-kind id.
    RequestBegin = 1,
    /// A request finished. `a` = request-kind id, `b` = total µs,
    /// `key` = plan key (when the response carried one).
    RequestEnd = 2,
    /// One pipeline stage completed. `a` = stage id, `b` = stage µs.
    StageEnd = 3,
    /// Cache lookup answered from memory. `key` = entry key,
    /// `a` = cache id, `b` = shard index.
    CacheHit = 4,
    /// Cache lookup found nothing; a compute began.
    CacheMiss = 5,
    /// Cache lookup coalesced onto another request's in-flight compute.
    CacheCoalesced = 6,
    /// Cache entry reloaded from the spill tier.
    CacheSpillLoad = 7,
    /// Cache entry evicted. `key` = evicted key.
    CacheEvict = 8,
    /// Cache entry written to the spill tier.
    CacheSpill = 9,
    /// Cache insert stalled waiting for capacity.
    CacheStall = 10,
    /// Scenario-transfer donor selected. `key` = donor plan key,
    /// `a` = donor distance in millionths, `b` = transferred states.
    TransferDonor = 11,
    /// Reactor loop took unusually long to process one wakeup.
    /// `a` = loop µs.
    ReactorStall = 12,
    /// `epoll_wait` blocked far past its timeout. `a` = wait µs.
    EpollWaitOutlier = 13,
    /// Worker-pool queue crossed its saturation threshold.
    /// `a` = pool id, `b` = queue depth.
    PoolSaturated = 14,
    /// A request handler panicked. `a` = request-kind id.
    HandlerPanic = 15,
}

impl EventKind {
    /// Every kind, for enumeration in docs and tests.
    pub const ALL: [EventKind; 15] = [
        EventKind::RequestBegin,
        EventKind::RequestEnd,
        EventKind::StageEnd,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::CacheCoalesced,
        EventKind::CacheSpillLoad,
        EventKind::CacheEvict,
        EventKind::CacheSpill,
        EventKind::CacheStall,
        EventKind::TransferDonor,
        EventKind::ReactorStall,
        EventKind::EpollWaitOutlier,
        EventKind::PoolSaturated,
        EventKind::HandlerPanic,
    ];

    /// Stable snake_case label (wire `event` field, dump files).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::RequestBegin => "request_begin",
            EventKind::RequestEnd => "request_end",
            EventKind::StageEnd => "stage",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheCoalesced => "cache_coalesced",
            EventKind::CacheSpillLoad => "cache_spill_load",
            EventKind::CacheEvict => "cache_evict",
            EventKind::CacheSpill => "cache_spill",
            EventKind::CacheStall => "cache_stall",
            EventKind::TransferDonor => "transfer_donor",
            EventKind::ReactorStall => "reactor_stall",
            EventKind::EpollWaitOutlier => "epoll_wait_outlier",
            EventKind::PoolSaturated => "pool_saturated",
            EventKind::HandlerPanic => "handler_panic",
        }
    }

    /// The kind for a stored discriminant, if it is one.
    pub fn from_u16(v: u16) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| *k as u16 == v)
    }
}

/// One decoded journal event, as returned by snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the recorder started.
    pub ts_us: u64,
    /// Name of the thread that emitted it.
    pub thread: Arc<str>,
    /// Raw kind discriminant (see [`Event::kind`]).
    pub kind_raw: u16,
    /// Request serial the event belongs to (0 = none).
    pub req: u64,
    /// Kind-specific subject key (e.g. a plan cache key).
    pub key: u64,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

impl Event {
    /// The decoded kind, when the discriminant is known.
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_u16(self.kind_raw)
    }
}

/// One event slot: a per-slot seqlock (`seq`) over relaxed data fields.
/// `seq` is even when the slot is stable; the n-th completed write into
/// the slot leaves `seq == 2 * n`, so a reader can tell mid-write (odd),
/// never-written and lapped slots apart from the value alone.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    kind: AtomicU64,
    req: AtomicU64,
    key: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            req: AtomicU64::new(0),
            key: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One thread's event ring. Exactly one thread writes (the owner); any
/// thread may snapshot concurrently.
struct Ring {
    /// Owner thread's name. Relabeled when an exited thread's ring is
    /// adopted by a new thread (never concurrent with writes: the old
    /// owner is dead before the ring enters the free list).
    label: Mutex<Arc<str>>,
    /// Total events ever written through this ring; the write cursor is
    /// `head % capacity`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(label: Arc<str>, capacity: usize) -> Ring {
        Ring {
            label: Mutex::new(label),
            head: AtomicU64::new(0),
            slots: (0..capacity.max(2)).map(|_| Slot::new()).collect(),
        }
    }

    fn label(&self) -> Arc<str> {
        Arc::clone(
            &self
                .label
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn relabel(&self, label: Arc<str>) {
        *self
            .label
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = label;
    }

    /// Writes one event. Must only be called by the owning thread — the
    /// seqlock protocol below assumes a single writer.
    fn push(&self, ts: u64, kind: u16, req: u64, key: u64, a: u64, b: u64) {
        let cap = self.slots.len() as u64;
        // LINT-ALLOW(atomic-ordering): `head` is a single-writer cursor —
        // the owner loads it relaxed (no one else writes it), publishes
        // with Release so snapshot readers' Acquire load sees completed
        // slots up to it.
        let n = self.head.load(Ordering::Relaxed);
        let Some(slot) = self.slots.get((n % cap) as usize) else {
            return;
        };
        let seq = &slot.seq;
        // Seqlock write: mark the slot dirty (odd), fence so the data
        // stores below cannot be observed without the odd mark, write the
        // fields relaxed, then publish the even seq with Release.
        // LINT-ALLOW(atomic-ordering): `seq` is a seqlock — the writer
        // side uses relaxed ops ordered by the Release fence, the final
        // store and the readers' Acquire loads pair to detect torn reads;
        // a uniform scheme cannot express this protocol.
        let s = seq.load(Ordering::Relaxed);
        seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.req.store(req, Ordering::Relaxed);
        slot.key.store(key, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        seq.store(s.wrapping_add(2), Ordering::Release);
        self.head.store(n.wrapping_add(1), Ordering::Release);
    }

    fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends every stable event still resident in the ring to `out`,
    /// oldest first. Slots mid-write, lapped during the scan, or never
    /// written are skipped — a snapshot is torn-free, never blocking.
    fn snapshot(&self, out: &mut Vec<Event>) {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let label = self.label();
        for n in head.saturating_sub(cap)..head {
            let Some(slot) = self.slots.get((n % cap) as usize) else {
                continue;
            };
            let seq = &slot.seq;
            // The n-th write (0-based) into a slot leaves seq at
            // 2 * (n / cap + 1); anything else means this logical entry
            // is gone (overwritten or in flux).
            let expect = (n / cap).wrapping_add(1).wrapping_mul(2);
            let s1 = seq.load(Ordering::Acquire);
            if s1 != expect {
                continue;
            }
            let event = Event {
                ts_us: slot.ts.load(Ordering::Relaxed),
                thread: Arc::clone(&label),
                kind_raw: slot.kind.load(Ordering::Relaxed) as u16,
                req: slot.req.load(Ordering::Relaxed),
                key: slot.key.load(Ordering::Relaxed),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            let s2 = seq.load(Ordering::Relaxed);
            if s2 == expect {
                out.push(event);
            }
        }
    }
}

/// One live thread's task-table slot. `kind` holds `task kind + 1`, so 0
/// reads as idle without a separate flag.
struct TaskSlot {
    thread: Arc<str>,
    kind: AtomicU64,
    serial: AtomicU64,
    key: AtomicU64,
    stage: AtomicU64,
    since_us: AtomicU64,
}

/// Point-in-time view of one thread's task slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSnapshot {
    /// The thread's name.
    pub thread: String,
    /// What the thread is doing (`None` = idle), as the caller-defined
    /// task-kind id passed to [`FlightRecorder::task_begin`].
    pub kind: Option<u16>,
    /// Request serial being worked on (0 = none).
    pub serial: u64,
    /// Subject key (e.g. plan key) of the current task.
    pub key: u64,
    /// Caller-defined stage id last reported for the task.
    pub stage: u16,
    /// Microseconds the thread has been on this task.
    pub elapsed_us: u64,
}

/// One retained journal excerpt for a slow or panicked request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Request-kind id (caller-defined, same space as task kinds).
    pub kind: u16,
    /// The request's serial.
    pub serial: u64,
    /// When it was captured, µs since recorder start.
    pub ts_us: u64,
    /// The request's end-to-end duration, µs.
    pub total_us: u64,
    /// Subject key (e.g. the plan key the request resolved to).
    pub key: u64,
    /// Whether the capture was triggered by a handler panic.
    pub panicked: bool,
    /// Every journal event carrying the request's serial, oldest first.
    pub events: Vec<Event>,
}

/// Interior state shared with thread-local hooks (so a hook outliving the
/// recorder handle can still return its ring to the free list).
struct Shared {
    alive: AtomicBool,
    /// Every ring ever handed to a thread (live and recycled alike);
    /// snapshots walk this.
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Rings whose owner threads exited, awaiting adoption.
    free_rings: Mutex<Vec<Arc<Ring>>>,
    /// Task slots of currently live emitting threads.
    tasks: Mutex<Vec<Arc<TaskSlot>>>,
}

/// The flight recorder. One per server (plus [`FlightRecorder::disabled`]
/// stand-ins); cheap to share via `Arc`.
///
/// A disabled recorder reduces every operation to one branch.
pub struct FlightRecorder {
    id: u64,
    enabled: bool,
    capacity: usize,
    start: Instant,
    serial: AtomicU64,
    shared: Arc<Shared>,
    exemplars: Mutex<HashMap<u16, VecDeque<Exemplar>>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.enabled)
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Thread-local binding of one thread to one recorder: its ring and task
/// slot. Dropped at thread exit — the ring is recycled, the task slot
/// removed.
struct Hook {
    recorder_id: u64,
    shared: Arc<Shared>,
    ring: Arc<Ring>,
    slot: Arc<TaskSlot>,
}

impl Drop for Hook {
    fn drop(&mut self) {
        let mut tasks = self
            .shared
            .tasks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tasks.retain(|s| !Arc::ptr_eq(s, &self.slot));
        drop(tasks);
        if self.shared.alive.load(Ordering::Relaxed) {
            self.shared
                .free_rings
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&self.ring));
        }
    }
}

thread_local! {
    /// This thread's per-recorder hooks. A `Vec` scan, not a map: a
    /// thread talks to one or two recorders in practice.
    static HOOKS: RefCell<Vec<Hook>> = const { RefCell::new(Vec::new()) };
    /// The request serial the current thread is working on (0 = none).
    static CURRENT_REQ: Cell<u64> = const { Cell::new(0) };
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_LABEL: AtomicU64 = AtomicU64::new(1);

/// Restores the previous thread-local current-request serial on drop.
/// Returned by [`FlightRecorder::begin_request`].
pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        let _ = CURRENT_REQ.try_with(|c| c.set(self.prev));
    }
}

impl FlightRecorder {
    /// A recorder with the default per-thread ring capacity.
    pub fn new(enabled: bool) -> FlightRecorder {
        FlightRecorder::with_capacity(enabled, DEFAULT_RING_CAPACITY)
    }

    /// A recorder retaining `capacity` events per thread ring.
    pub fn with_capacity(enabled: bool, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            enabled,
            capacity: capacity.max(2),
            start: Instant::now(),
            serial: AtomicU64::new(0),
            shared: Arc::new(Shared {
                alive: AtomicBool::new(true),
                rings: Mutex::new(Vec::new()),
                free_rings: Mutex::new(Vec::new()),
                tasks: Mutex::new(Vec::new()),
            }),
            exemplars: Mutex::new(HashMap::new()),
        }
    }

    /// A recorder that records nothing (every operation is one branch).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::with_capacity(false, 2)
    }

    /// Whether this recorder records at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Per-thread ring capacity (events retained per thread).
    pub fn ring_capacity(&self) -> usize {
        self.capacity
    }

    /// Microseconds since the recorder started (the `ts_us` clock).
    /// Computed in `u64` — `Duration::as_micros` goes through `u128`
    /// division, and this runs on every hot-path emit.
    pub fn now_us(&self) -> u64 {
        let d = self.start.elapsed();
        d.as_secs()
            .wrapping_mul(1_000_000)
            .wrapping_add(u64::from(d.subsec_micros()))
    }

    /// Allocates the next request serial (serials start at 1; 0 means
    /// "no request").
    pub fn next_serial(&self) -> u64 {
        self.serial.fetch_add(1, Ordering::Relaxed).wrapping_add(1)
    }

    /// Marks the current thread as working on request `serial` until the
    /// returned scope drops; every [`FlightRecorder::emit`] on this
    /// thread meanwhile carries the serial.
    pub fn begin_request(&self, serial: u64) -> RequestScope {
        let prev = CURRENT_REQ
            .try_with(|c| {
                let prev = c.get();
                c.set(serial);
                prev
            })
            .unwrap_or(0);
        RequestScope { prev }
    }

    /// The request serial the calling thread is currently working on
    /// (0 = none).
    pub fn current_request() -> u64 {
        CURRENT_REQ.try_with(Cell::get).unwrap_or(0)
    }

    /// Records one event attributed to the calling thread's current
    /// request (see [`FlightRecorder::begin_request`]).
    pub fn emit(&self, kind: EventKind, key: u64, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        self.emit_for(Self::current_request(), kind, key, a, b);
    }

    /// Records one event attributed to an explicit request serial.
    pub fn emit_for(&self, req: u64, kind: EventKind, key: u64, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        let ts = self.now_us();
        self.with_hook(|hook| hook.ring.push(ts, kind as u16, req, key, a, b));
    }

    /// Records several events for one request in a single ring access
    /// sharing one timestamp. The per-emit cost is dominated by the
    /// thread-local hook lookup and the clock read, not the seqlock
    /// write, so the hot path journals a request's whole stage breakdown
    /// through this instead of repeated [`FlightRecorder::emit_for`].
    pub fn emit_batch(&self, req: u64, events: &[(EventKind, u64, u64, u64)]) {
        if !self.enabled || events.is_empty() {
            return;
        }
        let ts = self.now_us();
        self.with_hook(|hook| {
            for &(kind, key, a, b) in events {
                hook.ring.push(ts, kind as u16, req, key, a, b);
            }
        });
    }

    /// Journals `request_begin` *and* marks the calling thread's
    /// task-table slot as working on the request, in one ring access —
    /// one per request on the hot path, where
    /// [`FlightRecorder::emit_for`] + [`FlightRecorder::task_begin`]
    /// would pay the hook lookup and clock read twice.
    pub fn request_begin(&self, serial: u64, kind: u16) {
        if !self.enabled {
            return;
        }
        let ts = self.now_us();
        self.with_hook(|hook| {
            hook.ring.push(
                ts,
                EventKind::RequestBegin as u16,
                serial,
                0,
                kind as u64,
                0,
            );
            hook.slot.kind.store(kind as u64 + 1, Ordering::Relaxed);
            hook.slot.serial.store(serial, Ordering::Relaxed);
            hook.slot.key.store(0, Ordering::Relaxed);
            hook.slot.stage.store(0, Ordering::Relaxed);
            hook.slot.since_us.store(ts, Ordering::Relaxed);
        });
    }

    /// Marks the calling thread's task-table slot as working on a task:
    /// caller-defined `kind` id, request `serial`, subject `key`.
    pub fn task_begin(&self, kind: u16, serial: u64, key: u64) {
        if !self.enabled {
            return;
        }
        let now = self.now_us();
        self.with_hook(|hook| {
            hook.slot.kind.store(kind as u64 + 1, Ordering::Relaxed);
            hook.slot.serial.store(serial, Ordering::Relaxed);
            hook.slot.key.store(key, Ordering::Relaxed);
            hook.slot.stage.store(0, Ordering::Relaxed);
            hook.slot.since_us.store(now, Ordering::Relaxed);
        });
    }

    /// Updates the stage id of the calling thread's current task.
    pub fn task_stage(&self, stage: u16) {
        if !self.enabled {
            return;
        }
        self.with_hook(|hook| hook.slot.stage.store(stage as u64, Ordering::Relaxed));
    }

    /// Records the subject key of the calling thread's current task.
    pub fn task_key(&self, key: u64) {
        if !self.enabled {
            return;
        }
        self.with_hook(|hook| hook.slot.key.store(key, Ordering::Relaxed));
    }

    /// Marks the calling thread's task-table slot idle.
    pub fn task_clear(&self) {
        if !self.enabled {
            return;
        }
        let now = self.now_us();
        self.with_hook(|hook| {
            hook.slot.kind.store(0, Ordering::Relaxed);
            hook.slot.serial.store(0, Ordering::Relaxed);
            hook.slot.key.store(0, Ordering::Relaxed);
            hook.slot.stage.store(0, Ordering::Relaxed);
            hook.slot.since_us.store(now, Ordering::Relaxed);
        });
    }

    /// Point-in-time view of every live emitting thread, in registration
    /// order.
    pub fn tasks(&self) -> Vec<TaskSnapshot> {
        if !self.enabled {
            return Vec::new();
        }
        let now = self.now_us();
        let tasks = self
            .shared
            .tasks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tasks
            .iter()
            .map(|slot| {
                let kind = slot.kind.load(Ordering::Relaxed);
                TaskSnapshot {
                    thread: slot.thread.to_string(),
                    kind: kind.checked_sub(1).map(|k| k as u16),
                    serial: slot.serial.load(Ordering::Relaxed),
                    key: slot.key.load(Ordering::Relaxed),
                    stage: slot.stage.load(Ordering::Relaxed) as u16,
                    elapsed_us: now.saturating_sub(slot.since_us.load(Ordering::Relaxed)),
                }
            })
            .collect()
    }

    /// Total events ever recorded (including those already overwritten in
    /// their rings) — the event-rate numerator.
    pub fn events_total(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        let rings = self
            .shared
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        rings.iter().map(|r| r.head()).sum()
    }

    /// Every event still resident in any ring, sorted by timestamp.
    pub fn snapshot_events(&self) -> Vec<Event> {
        if !self.enabled {
            return Vec::new();
        }
        let rings: Vec<Arc<Ring>> = {
            let rings = self
                .shared
                .rings
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            rings.clone()
        };
        let mut out = Vec::new();
        for ring in rings {
            ring.snapshot(&mut out);
        }
        out.sort_by_key(|e| e.ts_us);
        out
    }

    /// The journal excerpt for one request: every resident event carrying
    /// `serial`, oldest first.
    pub fn events_for(&self, serial: u64) -> Vec<Event> {
        if serial == 0 {
            return Vec::new();
        }
        let mut events = self.snapshot_events();
        events.retain(|e| e.req == serial);
        events
    }

    /// Captures and retains the journal excerpt for a slow or panicked
    /// request (last [`EXEMPLARS_PER_KIND`] kept per request kind).
    pub fn capture_exemplar(
        &self,
        kind: u16,
        serial: u64,
        total_us: u64,
        key: u64,
        panicked: bool,
    ) {
        if !self.enabled || serial == 0 {
            return;
        }
        let exemplar = Exemplar {
            kind,
            serial,
            ts_us: self.now_us(),
            total_us,
            key,
            panicked,
            events: self.events_for(serial),
        };
        let mut store = self
            .exemplars
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = store.entry(kind).or_default();
        if slot.len() >= EXEMPLARS_PER_KIND {
            slot.pop_front();
        }
        slot.push_back(exemplar);
    }

    /// Every retained exemplar, ordered by kind id then capture time.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let store = self
            .exemplars
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<Exemplar> = store.values().flatten().cloned().collect();
        out.sort_by_key(|e| (e.kind, e.ts_us));
        out
    }

    /// Runs `f` with this thread's hook, registering the thread with the
    /// recorder on first use (adopting a recycled ring when one is free).
    fn with_hook(&self, f: impl FnOnce(&Hook)) {
        let _ = HOOKS.try_with(|hooks| {
            let mut hooks = hooks.borrow_mut();
            if let Some(hook) = hooks.iter().find(|h| h.recorder_id == self.id) {
                f(hook);
                return;
            }
            if hooks.len() >= HOOK_PRUNE_LEN {
                hooks.retain(|h| h.shared.alive.load(Ordering::Relaxed));
            }
            let hook = self.register_thread();
            f(&hook);
            hooks.push(hook);
        });
    }

    /// Builds this thread's hook: a ring (recycled or fresh) plus a task
    /// slot, both registered with the recorder.
    fn register_thread(&self) -> Hook {
        let label: Arc<str> = match std::thread::current().name() {
            Some(name) => Arc::from(name),
            None => Arc::from(
                format!(
                    "thread-{}",
                    NEXT_THREAD_LABEL.fetch_add(1, Ordering::Relaxed)
                )
                .as_str(),
            ),
        };
        let ring = {
            let recycled = self
                .shared
                .free_rings
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop();
            match recycled {
                Some(ring) => {
                    ring.relabel(Arc::clone(&label));
                    ring
                }
                None => {
                    let ring = Arc::new(Ring::new(Arc::clone(&label), self.capacity));
                    self.shared
                        .rings
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(Arc::clone(&ring));
                    ring
                }
            }
        };
        let slot = Arc::new(TaskSlot {
            thread: label,
            kind: AtomicU64::new(0),
            serial: AtomicU64::new(0),
            key: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            since_us: AtomicU64::new(self.now_us()),
        });
        self.shared
            .tasks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&slot));
        Hook {
            recorder_id: self.id,
            shared: Arc::clone(&self.shared),
            ring,
            slot,
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // Lets threads still holding hooks prune them lazily instead of
        // recycling rings into a dead recorder.
        self.shared.alive.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::disabled();
        rec.emit(EventKind::RequestBegin, 1, 2, 3);
        rec.task_begin(0, 1, 2);
        rec.capture_exemplar(0, 1, 10, 2, false);
        assert_eq!(rec.events_total(), 0);
        assert!(rec.snapshot_events().is_empty());
        assert!(rec.tasks().is_empty());
        assert!(rec.exemplars().is_empty());
    }

    #[test]
    fn events_carry_serial_key_and_payloads() {
        let rec = FlightRecorder::new(true);
        let serial = rec.next_serial();
        assert_eq!(serial, 1);
        let scope = rec.begin_request(serial);
        rec.emit(EventKind::CacheHit, 0xabcd, 7, 3);
        drop(scope);
        rec.emit(EventKind::ReactorStall, 0, 999, 0);
        let events = rec.snapshot_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), Some(EventKind::CacheHit));
        assert_eq!(events[0].req, serial);
        assert_eq!(events[0].key, 0xabcd);
        assert_eq!((events[0].a, events[0].b), (7, 3));
        assert_eq!(events[1].req, 0, "scope dropped: no current request");
        assert_eq!(rec.events_total(), 2);
        assert_eq!(rec.events_for(serial).len(), 1);
    }

    #[test]
    fn ring_keeps_only_the_newest_capacity_events() {
        let rec = FlightRecorder::with_capacity(true, 8);
        for i in 0..100u64 {
            rec.emit_for(1, EventKind::StageEnd, 0, i, 0);
        }
        let events = rec.snapshot_events();
        assert_eq!(events.len(), 8);
        let seen: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(seen, (92..100).collect::<Vec<u64>>(), "newest 8, in order");
        assert_eq!(rec.events_total(), 100);
    }

    #[test]
    fn begin_request_nests_and_restores() {
        let rec = FlightRecorder::new(true);
        let outer = rec.begin_request(5);
        assert_eq!(FlightRecorder::current_request(), 5);
        {
            let _inner = rec.begin_request(9);
            assert_eq!(FlightRecorder::current_request(), 9);
        }
        assert_eq!(FlightRecorder::current_request(), 5);
        drop(outer);
        assert_eq!(FlightRecorder::current_request(), 0);
    }

    #[test]
    fn task_table_tracks_begin_stage_clear() {
        let rec = FlightRecorder::new(true);
        rec.task_begin(3, 41, 0xfeed);
        rec.task_stage(4);
        let tasks = rec.tasks();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].kind, Some(3));
        assert_eq!(tasks[0].serial, 41);
        assert_eq!(tasks[0].key, 0xfeed);
        assert_eq!(tasks[0].stage, 4);
        rec.task_clear();
        let tasks = rec.tasks();
        assert_eq!(tasks[0].kind, None, "cleared slot reads idle");
    }

    #[test]
    fn task_slot_disappears_when_its_thread_exits() {
        let rec = Arc::new(FlightRecorder::new(true));
        let r = Arc::clone(&rec);
        std::thread::Builder::new()
            .name("rec-test-worker".into())
            .spawn(move || {
                r.task_begin(1, 1, 0);
                r.emit_for(1, EventKind::RequestBegin, 0, 0, 0);
            })
            .expect("spawn")
            .join()
            .expect("join");
        assert!(
            rec.tasks().iter().all(|t| t.thread != "rec-test-worker"),
            "exited thread's slot removed"
        );
        // Its ring (and events) survive for post-mortems.
        assert_eq!(rec.events_total(), 1);
        let events = rec.snapshot_events();
        assert_eq!(events.len(), 1);
        assert_eq!(&*events[0].thread, "rec-test-worker");
    }

    #[test]
    fn rings_are_recycled_across_thread_churn() {
        let rec = Arc::new(FlightRecorder::with_capacity(true, 16));
        for i in 0..20u64 {
            let r = Arc::clone(&rec);
            std::thread::spawn(move || r.emit_for(i + 1, EventKind::RequestBegin, 0, i, 0))
                .join()
                .expect("join");
        }
        let rings = rec.shared.rings.lock().expect("lock").len();
        assert_eq!(rings, 1, "serial thread churn reuses one ring");
        assert_eq!(rec.events_total(), 20);
    }

    #[test]
    fn exemplars_are_bounded_last_k_per_kind() {
        let rec = FlightRecorder::new(true);
        for serial in 1..=10u64 {
            rec.emit_for(serial, EventKind::CacheMiss, serial, 0, 0);
            rec.capture_exemplar(2, serial, serial * 100, serial, false);
        }
        let exemplars = rec.exemplars();
        assert_eq!(exemplars.len(), EXEMPLARS_PER_KIND);
        let serials: Vec<u64> = exemplars.iter().map(|e| e.serial).collect();
        assert_eq!(serials, vec![7, 8, 9, 10], "the newest K survive");
        assert_eq!(exemplars[3].events.len(), 1);
        assert_eq!(exemplars[3].events[0].key, 10);
    }

    #[test]
    fn event_kind_labels_roundtrip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u16(kind as u16), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(EventKind::from_u16(0), None);
        assert_eq!(EventKind::from_u16(999), None);
    }
}
