//! Log-linear bucketed histogram for latency distributions.
//!
//! Values are `u64` (the serve stack records microseconds). The bucket
//! layout is HdrHistogram-style log-linear: each power-of-two octave is
//! split into 8 linear sub-buckets, so the relative quantile error is
//! bounded by 1/8 = 12.5% at every magnitude, from 1 µs to `u64::MAX`,
//! with a fixed 496-bucket table and no allocation on record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave as a power of two (2^3 = 8).
const SUB_BUCKET_BITS: u32 = 3;
/// Linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Total buckets needed to cover the full `u64` range.
///
/// Values below 8 get one bucket each; every octave `[2^k, 2^(k+1))` for
/// `k` in `3..=63` contributes 8 sub-buckets: `8 + 61 * 8 = 496`.
pub const NUM_BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BUCKET_BITS as u64) * SUB_BUCKETS) as usize;

/// Bucket index for a recorded value.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let shift = msb - u64::from(SUB_BUCKET_BITS);
    // The top sub-bucket term `v >> shift` lands in [8, 16), so octaves
    // tile contiguously after the 8 unit buckets.
    ((shift * SUB_BUCKETS) + (v >> shift)) as usize
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let block = (i - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << block
}

/// Inclusive upper bound of a bucket (the last bucket saturates at
/// `u64::MAX`).
fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_lower(index + 1) - 1
}

/// A concurrent latency histogram.
///
/// Recording is two relaxed atomic adds; readers take a [`Histogram::snapshot`]
/// (`Histogram::snapshot`) and do all analysis on the immutable copy.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state for analysis.
    ///
    /// Concurrent recording makes the copy only approximately atomic —
    /// `count` is re-derived from the bucket copy so the snapshot is
    /// always internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], mergeable across shards or
/// processes that share the bucket layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Rebuilds a snapshot from raw `(bucket_index, count)` pairs plus a
    /// value sum — the wire format used by the serve protocol. Indices
    /// outside the table are ignored.
    pub fn from_raw(entries: &[(usize, u64)], sum: u64) -> Self {
        let mut snap = HistogramSnapshot::empty();
        for &(index, n) in entries {
            if index < NUM_BUCKETS {
                snap.buckets[index] += n;
                snap.count += n;
            }
        }
        snap.sum = sum;
        snap
    }

    /// Folds another snapshot into this one. Merging is commutative and
    /// associative, so shard snapshots can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile value
    /// (`0.0 <= q <= 1.0`), or 0 when empty.
    ///
    /// The estimate is within one bucket boundary of the exact order
    /// statistic: at most 12.5% relative error by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty buckets as `(index, upper_bound, count)` triples, in
    /// ascending bucket order — the compact form used for wire snapshots
    /// and Prometheus bucket lines.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, bucket_upper(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_tiles_the_u64_range() {
        assert_eq!(NUM_BUCKETS, 496);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Boundaries are contiguous: each bucket starts right after the
        // previous one ends.
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_lower(i),
                bucket_upper(i - 1).wrapping_add(1),
                "gap at bucket {i}"
            );
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn recorded_values_land_between_their_bucket_bounds() {
        for v in [0, 1, 7, 8, 9, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "value {v}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        // Exact p50 is 500; the bucket [448, 511] holds it.
        let p50 = s.p50();
        assert!((448..=511).contains(&500));
        assert!((500..=511).contains(&p50), "p50 estimate {p50}");
        let p99 = s.p99();
        assert!((990..=1023).contains(&p99), "p99 estimate {p99}");
        assert!(s.p999() >= s.p99() && s.p99() >= s.p90() && s.p90() >= s.p50());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [3u64, 9, 81, 6561] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 27, 243, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn raw_roundtrip_preserves_the_distribution() {
        let h = Histogram::new();
        for v in [0u64, 5, 80, 1300, 99_999] {
            h.record(v);
        }
        let s = h.snapshot();
        let raw: Vec<(usize, u64)> = s
            .nonzero_buckets()
            .iter()
            .map(|&(i, _, n)| (i, n))
            .collect();
        assert_eq!(HistogramSnapshot::from_raw(&raw, s.sum()), s);
    }

    #[test]
    fn empty_snapshot_is_a_merge_identity() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(250));
        let s = h.snapshot();
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&s);
        assert_eq!(merged, s);
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), 0);
        assert_eq!(HistogramSnapshot::empty().mean(), 0.0);
    }
}
