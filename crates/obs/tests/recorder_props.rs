//! Property tests for the flight recorder's per-thread seqlock rings:
//! capacity is a hard bound under concurrent writers, per-thread event
//! order survives snapshotting, and a snapshot taken *during* writes is
//! torn-free — every event read back is one that was written, never a
//! half-overwritten hybrid.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use qsdnn_obs::{EventKind, FlightRecorder};

/// Spawns `threads` named writers, each emitting `per_thread` events whose
/// `a` field is the thread-local sequence number 0..per_thread. A barrier
/// holds every writer alive until all have finished emitting: the recorder
/// recycles an exited thread's ring for the next thread to register
/// (relabeling it), so letting a fast writer die mid-run would re-attribute
/// its events to whichever slow writer adopts the ring.
fn write_concurrently(rec: &Arc<FlightRecorder>, threads: usize, per_thread: u64) {
    let all_done = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rec = Arc::clone(rec);
            let all_done = Arc::clone(&all_done);
            std::thread::Builder::new()
                .name(format!("rec-prop-{t}"))
                .spawn(move || {
                    for i in 0..per_thread {
                        rec.emit(EventKind::CacheHit, t as u64, i, i.wrapping_mul(3));
                    }
                    all_done.wait();
                })
                .expect("spawn writer")
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// However many events concurrent writers push, no thread ever
    /// retains more than the ring capacity, while the monotonic journal
    /// counter still accounts for every single emit.
    #[test]
    fn concurrent_writers_never_exceed_capacity(
        capacity in 2usize..64,
        threads in 1usize..6,
        per_thread in 1u64..200,
    ) {
        let rec = Arc::new(FlightRecorder::with_capacity(true, capacity));
        write_concurrently(&rec, threads, per_thread);
        prop_assert_eq!(rec.events_total(), threads as u64 * per_thread);
        let events = rec.snapshot_events();
        for t in 0..threads {
            let name = format!("rec-prop-{t}");
            let kept = events.iter().filter(|e| *e.thread == name).count();
            prop_assert!(
                kept <= capacity,
                "thread {name} retained {kept} events in a ring of {capacity}"
            );
            prop_assert_eq!(kept as u64, per_thread.min(capacity as u64));
        }
    }

    /// Within one thread the snapshot preserves emit order and retains
    /// exactly the newest suffix: sequence numbers are consecutive and
    /// end at the last value written.
    #[test]
    fn per_thread_order_is_preserved(
        capacity in 2usize..64,
        threads in 1usize..6,
        per_thread in 1u64..200,
    ) {
        let rec = Arc::new(FlightRecorder::with_capacity(true, capacity));
        write_concurrently(&rec, threads, per_thread);
        let events = rec.snapshot_events();
        for t in 0..threads {
            let name = format!("rec-prop-{t}");
            let seq: Vec<u64> = events
                .iter()
                .filter(|e| *e.thread == name)
                .map(|e| e.a)
                .collect();
            let expect_first = per_thread.saturating_sub(capacity as u64);
            let expected: Vec<u64> = (expect_first..per_thread).collect();
            prop_assert_eq!(
                seq, expected,
                "thread {} must retain the newest suffix in emit order",
                name
            );
        }
    }
}

/// A snapshot racing a writer never observes a torn event. The writer
/// spins emitting events whose three payload fields agree (`key == a`
/// and `b == a * 3`); any snapshot that reads a mix of two different
/// events would break that invariant.
#[test]
fn snapshot_during_write_is_torn_free() {
    let rec = Arc::new(FlightRecorder::with_capacity(true, 32));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let rec = Arc::clone(&rec);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("rec-torn-writer".into())
            .spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    rec.emit(EventKind::CacheMiss, i, i, i.wrapping_mul(3));
                    i = i.wrapping_add(1);
                }
            })
            .expect("spawn writer")
    };
    for _ in 0..500 {
        for e in rec.snapshot_events() {
            if &*e.thread != "rec-torn-writer" {
                continue;
            }
            assert_eq!(e.key, e.a, "torn event: key {} vs a {}", e.key, e.a);
            assert_eq!(
                e.b,
                e.a.wrapping_mul(3),
                "torn event: b {} vs a {}",
                e.b,
                e.a
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
}
