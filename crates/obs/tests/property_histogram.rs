//! Property tests for the log-linear histogram: bucket containment,
//! associative merging, and quantile accuracy within one bucket boundary
//! of the exact order statistic.

use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

use qsdnn_obs::{Histogram, HistogramSnapshot};

/// Draws a value spread across all magnitudes: a uniform 64-bit draw
/// right-shifted by a uniform amount, so small and huge values are
/// equally likely (a plain uniform u64 would almost never be small).
fn magnitude_value(rng: &mut SmallRng) -> u64 {
    let shift = rng.gen_range(0usize..64);
    rng.gen::<u64>() >> shift
}

/// The bucket a value lands in, observed through the public API: record
/// it alone and read back the single non-empty bucket.
fn observed_bucket(v: u64) -> (usize, u64) {
    let h = Histogram::new();
    h.record(v);
    let buckets = h.snapshot().nonzero_buckets();
    assert_eq!(buckets.len(), 1, "one value must fill exactly one bucket");
    let (index, upper, n) = buckets[0];
    assert_eq!(n, 1);
    (index, upper)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose inclusive upper bound is at
    /// least the value and whose width bounds the relative error by
    /// 12.5%: the estimate a quantile returns for this value can be off
    /// by at most `v / 8`.
    #[test]
    fn values_land_in_the_right_bucket(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = magnitude_value(&mut rng);
        let (index, upper) = observed_bucket(v);
        prop_assert!(upper >= v, "upper bound {upper} below value {v}");
        prop_assert!(
            upper - v <= v / 8,
            "bucket too wide for {v}: upper {upper}"
        );
        // The upper bound itself is in the same bucket (inclusive), and
        // the next integer starts a later bucket.
        prop_assert_eq!(observed_bucket(upper).0, index);
        if upper < u64::MAX {
            prop_assert!(observed_bucket(upper + 1).0 > index);
        }
    }

    /// Merging is associative and commutative: shard snapshots can be
    /// folded in any order.
    #[test]
    fn snapshot_merge_is_associative(seed in 0u64..1_000_000, n in 1usize..60) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts: Vec<HistogramSnapshot> = (0..3)
            .map(|_| {
                let h = Histogram::new();
                for _ in 0..n {
                    h.record(magnitude_value(&mut rng));
                }
                h.snapshot()
            })
            .collect();
        // (a ⊕ b) ⊕ c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = parts[0].clone();
        ab.merge(&parts[1]);
        let mut ba = parts[1].clone();
        ba.merge(&parts[0]);
        prop_assert_eq!(ab, ba);
    }

    /// A quantile estimate is the upper bound of the bucket holding the
    /// exact order statistic — "within one bucket boundary of exact".
    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        seed in 0u64..1_000_000,
        n in 1usize..200,
        q in 0.0f64..1.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut values: Vec<u64> = (0..n).map(|_| magnitude_value(&mut rng)).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = values[rank - 1];
        let estimate = h.snapshot().quantile(q);
        prop_assert!(estimate >= exact, "estimate {estimate} under exact {exact}");
        prop_assert_eq!(
            observed_bucket(estimate).0,
            observed_bucket(exact).0,
            "estimate {} left the exact value's bucket ({})",
            estimate,
            exact
        );
    }

    /// Count and sum survive any merge split: recording a value set into
    /// two histograms and merging equals recording it into one.
    #[test]
    fn merge_matches_single_histogram(seed in 0u64..1_000_000, n in 2usize..80) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let values: Vec<u64> = (0..n).map(|_| magnitude_value(&mut rng) >> 8).collect();
        let whole = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }
}
