//! DNN layer IR, DAG graph and model zoo for the QS-DNN reproduction.
//!
//! A [`Network`] is a directed acyclic graph of layers ([`LayerDesc`]) with
//! inferred output shapes. The QS-DNN search walks the network in
//! topological serialization order, choosing one primitive per layer; the
//! graph *edges* (producer → consumer) are where layout-conversion and
//! CPU↔GPU transfer penalties arise.
//!
//! The [`zoo`] module provides the nine networks evaluated in the paper's
//! task mix (image classification, face recognition, object detection).
//!
//! # Examples
//!
//! ```
//! use qsdnn_nn::zoo;
//!
//! let net = zoo::lenet5(1);
//! assert_eq!(net.name(), "lenet5");
//! assert!(net.len() > 5);
//! // Output of the last layer is the 10-class score vector.
//! let last = net.layers().last().unwrap();
//! assert_eq!(last.output_shape.c, 10);
//! ```

mod error;
mod graph;
mod layer;
pub mod zoo;

pub use error::GraphError;
pub use graph::{LayerId, Network, NetworkBuilder, Node};
pub use layer::{
    ConvParams, FcParams, LayerDesc, LayerKind, LayerTag, LrnParams, PoolKind, PoolParams,
};
