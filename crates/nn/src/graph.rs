use serde::{Deserialize, Serialize};

use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, GraphError, LayerDesc, LayerKind, LrnParams, PoolParams};

/// Identifier of a layer inside a [`Network`]; also its position in the
/// topological serialization order (builders append in dependency order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl LayerId {
    /// Position in the serialization order.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A layer instance in a network: descriptor, wiring and resolved shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The layer's id (== its topological index).
    pub id: LayerId,
    /// The operator and its parameters.
    pub desc: LayerDesc,
    /// Producers feeding this layer.
    pub inputs: Vec<LayerId>,
    /// Inferred output shape.
    pub output_shape: Shape,
}

/// A validated, shape-inferred DAG of layers.
///
/// Construct with [`NetworkBuilder`]. Node ids are topologically ordered by
/// construction, which is the serialization order the QS-DNN agent walks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
}

impl Network {
    /// The network's name (e.g. `"mobilenet_v1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers in topological order.
    pub fn layers(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of layers (including the input placeholder).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: LayerId) -> &Node {
        &self.nodes[id.0]
    }

    /// Input shapes of `id` (producers' output shapes, in input order).
    pub fn input_shapes(&self, id: LayerId) -> Vec<Shape> {
        self.nodes[id.0]
            .inputs
            .iter()
            .map(|&p| self.nodes[p.0].output_shape)
            .collect()
    }

    /// All producer → consumer edges.
    pub fn edges(&self) -> Vec<(LayerId, LayerId)> {
        let mut edges = Vec::new();
        for node in &self.nodes {
            for &src in &node.inputs {
                edges.push((src, node.id));
            }
        }
        edges
    }

    /// Consumers of each layer, indexed by layer id.
    pub fn consumers(&self) -> Vec<Vec<LayerId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for node in &self.nodes {
            for &src in &node.inputs {
                out[src.0].push(node.id);
            }
        }
        out
    }

    /// Total multiply-accumulate count of one forward pass.
    pub fn total_macs(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.desc.macs(&self.input_shapes(n.id), n.output_shape))
            .sum()
    }

    /// Total learned parameter count.
    pub fn total_params(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.desc.param_count(&self.input_shapes(n.id)))
            .sum()
    }
}

/// Incremental builder for [`Network`] with on-the-fly shape inference.
///
/// Layers must be appended after their producers, which makes node ids a
/// valid topological order by construction.
///
/// # Examples
///
/// ```
/// use qsdnn_nn::{ConvParams, NetworkBuilder};
/// use qsdnn_tensor::Shape;
///
/// # fn main() -> Result<(), qsdnn_nn::GraphError> {
/// let mut b = NetworkBuilder::new("tiny");
/// let x = b.input(Shape::new(1, 3, 8, 8));
/// let c = b.conv("conv1", x, ConvParams::square(16, 3, 1, 1))?;
/// let r = b.relu("relu1", c);
/// let net = b.build()?;
/// assert_eq!(net.len(), 3);
/// assert_eq!(net.node(r).output_shape, Shape::new(1, 16, 8, 8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl NetworkBuilder {
    /// Starts a new network with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, desc: LayerDesc, inputs: Vec<LayerId>, shape: Shape) -> LayerId {
        let id = LayerId(self.nodes.len());
        self.nodes.push(Node {
            id,
            desc,
            inputs,
            output_shape: shape,
        });
        id
    }

    fn shape_of(&self, id: LayerId, layer: &str) -> Result<Shape, GraphError> {
        self.nodes
            .get(id.0)
            .map(|n| n.output_shape)
            .ok_or(GraphError::UnknownInput {
                layer: layer.to_string(),
                input: id.0,
            })
    }

    /// Adds the input placeholder; its "output" is the network input.
    pub fn input(&mut self, shape: Shape) -> LayerId {
        self.push(LayerDesc::new("input", LayerKind::Input), vec![], shape)
    }

    /// Adds a convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `from` is unknown or the window does not fit.
    pub fn conv(
        &mut self,
        name: &str,
        from: LayerId,
        params: ConvParams,
    ) -> Result<LayerId, GraphError> {
        let in_shape = self.shape_of(from, name)?;
        let (oh, ow) = window_out(name, in_shape, params.kernel, params.stride, params.pad)?;
        let shape = Shape::new(in_shape.n, params.out_channels, oh, ow);
        Ok(self.push(
            LayerDesc::new(name, LayerKind::Conv(params)),
            vec![from],
            shape,
        ))
    }

    /// Adds a depth-wise convolution layer (`out_channels` is ignored; the
    /// channel count is inherited from the input).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `from` is unknown or the window does not fit.
    pub fn depthwise_conv(
        &mut self,
        name: &str,
        from: LayerId,
        mut params: ConvParams,
    ) -> Result<LayerId, GraphError> {
        let in_shape = self.shape_of(from, name)?;
        params.out_channels = in_shape.c;
        let (oh, ow) = window_out(name, in_shape, params.kernel, params.stride, params.pad)?;
        let shape = Shape::new(in_shape.n, in_shape.c, oh, ow);
        Ok(self.push(
            LayerDesc::new(name, LayerKind::DepthwiseConv(params)),
            vec![from],
            shape,
        ))
    }

    /// Adds a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `from` is unknown or the window does not fit.
    pub fn pool(
        &mut self,
        name: &str,
        from: LayerId,
        params: PoolParams,
    ) -> Result<LayerId, GraphError> {
        let in_shape = self.shape_of(from, name)?;
        let shape = if params.global {
            Shape::new(in_shape.n, in_shape.c, 1, 1)
        } else if params.ceil {
            let (oh, ow) =
                window_out_ceil(name, in_shape, params.kernel, params.stride, params.pad)?;
            Shape::new(in_shape.n, in_shape.c, oh, ow)
        } else {
            let (oh, ow) = window_out(name, in_shape, params.kernel, params.stride, params.pad)?;
            Shape::new(in_shape.n, in_shape.c, oh, ow)
        };
        Ok(self.push(
            LayerDesc::new(name, LayerKind::Pool(params)),
            vec![from],
            shape,
        ))
    }

    /// Adds a ReLU activation.
    ///
    /// # Panics
    ///
    /// Panics if `from` is unknown (activations always follow an existing
    /// layer in practice; misuse is a programming error).
    pub fn relu(&mut self, name: &str, from: LayerId) -> LayerId {
        let shape = self.nodes[from.0].output_shape;
        self.push(LayerDesc::new(name, LayerKind::Relu), vec![from], shape)
    }

    /// Adds an inference-time batch normalization (scale + shift).
    ///
    /// # Panics
    ///
    /// Panics if `from` is unknown.
    pub fn batch_norm(&mut self, name: &str, from: LayerId) -> LayerId {
        let shape = self.nodes[from.0].output_shape;
        self.push(
            LayerDesc::new(name, LayerKind::BatchNorm),
            vec![from],
            shape,
        )
    }

    /// Adds a local response normalization layer.
    ///
    /// # Panics
    ///
    /// Panics if `from` is unknown.
    pub fn lrn(&mut self, name: &str, from: LayerId, params: LrnParams) -> LayerId {
        let shape = self.nodes[from.0].output_shape;
        self.push(
            LayerDesc::new(name, LayerKind::Lrn(params)),
            vec![from],
            shape,
        )
    }

    /// Adds a fully-connected layer (input is implicitly flattened).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownInput`] if `from` is unknown.
    pub fn fc(
        &mut self,
        name: &str,
        from: LayerId,
        params: FcParams,
    ) -> Result<LayerId, GraphError> {
        let in_shape = self.shape_of(from, name)?;
        let shape = Shape::vector(in_shape.n, params.out_features);
        Ok(self.push(
            LayerDesc::new(name, LayerKind::Fc(params)),
            vec![from],
            shape,
        ))
    }

    /// Adds a softmax over channels.
    ///
    /// # Panics
    ///
    /// Panics if `from` is unknown.
    pub fn softmax(&mut self, name: &str, from: LayerId) -> LayerId {
        let shape = self.nodes[from.0].output_shape;
        self.push(LayerDesc::new(name, LayerKind::Softmax), vec![from], shape)
    }

    /// Adds a channel concatenation of two or more inputs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if fewer than two inputs are given, any is
    /// unknown, or spatial extents / batch sizes disagree.
    pub fn concat(&mut self, name: &str, from: &[LayerId]) -> Result<LayerId, GraphError> {
        if from.len() < 2 {
            return Err(GraphError::ArityMismatch {
                layer: name.to_string(),
                expected: "two or more",
                got: from.len(),
            });
        }
        let first = self.shape_of(from[0], name)?;
        let mut channels = 0;
        for &id in from {
            let s = self.shape_of(id, name)?;
            if (s.n, s.h, s.w) != (first.n, first.h, first.w) {
                return Err(GraphError::ShapeError {
                    layer: name.to_string(),
                    reason: format!("concat input {s} incompatible with {first}"),
                });
            }
            channels += s.c;
        }
        let shape = Shape::new(first.n, channels, first.h, first.w);
        Ok(self.push(
            LayerDesc::new(name, LayerKind::Concat),
            from.to_vec(),
            shape,
        ))
    }

    /// Adds an element-wise addition of exactly two inputs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the two input shapes differ or an input is
    /// unknown.
    pub fn add(&mut self, name: &str, a: LayerId, b: LayerId) -> Result<LayerId, GraphError> {
        let sa = self.shape_of(a, name)?;
        let sb = self.shape_of(b, name)?;
        if sa != sb {
            return Err(GraphError::ShapeError {
                layer: name.to_string(),
                reason: format!("add inputs {sa} vs {sb}"),
            });
        }
        Ok(self.push(LayerDesc::new(name, LayerKind::Add), vec![a, b], sa))
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if no layers were added.
    pub fn build(self) -> Result<Network, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        Ok(Network {
            name: self.name,
            nodes: self.nodes,
        })
    }
}

/// Floor-mode output extents of a sliding window (convolution semantics).
fn window_out(
    layer: &str,
    s: Shape,
    kernel: (usize, usize),
    stride: (usize, usize),
    pad: (usize, usize),
) -> Result<(usize, usize), GraphError> {
    let eh = s.h + 2 * pad.0;
    let ew = s.w + 2 * pad.1;
    if kernel.0 == 0 || kernel.1 == 0 || stride.0 == 0 || stride.1 == 0 {
        return Err(GraphError::ShapeError {
            layer: layer.to_string(),
            reason: "kernel and stride extents must be positive".to_string(),
        });
    }
    if eh < kernel.0 || ew < kernel.1 {
        return Err(GraphError::ShapeError {
            layer: layer.to_string(),
            reason: format!(
                "window {}x{} exceeds padded input {eh}x{ew}",
                kernel.0, kernel.1
            ),
        });
    }
    Ok((
        (eh - kernel.0) / stride.0 + 1,
        (ew - kernel.1) / stride.1 + 1,
    ))
}

/// Ceil-mode output extents (Caffe pooling semantics).
fn window_out_ceil(
    layer: &str,
    s: Shape,
    kernel: (usize, usize),
    stride: (usize, usize),
    pad: (usize, usize),
) -> Result<(usize, usize), GraphError> {
    let (oh, ow) = window_out(layer, s, kernel, stride, pad)?;
    let rem_h = (s.h + 2 * pad.0 - kernel.0) % stride.0;
    let rem_w = (s.w + 2 * pad.1 - kernel.1) % stride.1;
    Ok((oh + usize::from(rem_h != 0), ow + usize::from(rem_w != 0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolKind;

    fn tiny() -> Network {
        let mut b = NetworkBuilder::new("tiny");
        let x = b.input(Shape::new(1, 3, 8, 8));
        let c = b.conv("c1", x, ConvParams::square(4, 3, 1, 1)).unwrap();
        let r = b.relu("r1", c);
        let p = b
            .pool("p1", r, PoolParams::square(PoolKind::Max, 2, 2, 0))
            .unwrap();
        let f = b.fc("fc", p, FcParams::new(10)).unwrap();
        b.softmax("sm", f);
        b.build().unwrap()
    }

    #[test]
    fn shapes_flow_through() {
        let net = tiny();
        assert_eq!(net.node(LayerId(1)).output_shape, Shape::new(1, 4, 8, 8));
        assert_eq!(net.node(LayerId(3)).output_shape, Shape::new(1, 4, 4, 4));
        assert_eq!(net.node(LayerId(4)).output_shape, Shape::vector(1, 10));
    }

    #[test]
    fn edges_are_producer_consumer() {
        let net = tiny();
        let edges = net.edges();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(LayerId(0), LayerId(1))));
        assert!(edges.contains(&(LayerId(4), LayerId(5))));
    }

    #[test]
    fn consumers_inverse_of_inputs() {
        let net = tiny();
        let cons = net.consumers();
        assert_eq!(cons[0], vec![LayerId(1)]);
        assert!(cons[5].is_empty());
    }

    #[test]
    fn conv_stride_and_pad() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 3, 227, 227));
        // AlexNet conv1: 96 kernels 11x11 stride 4 -> 55x55.
        let c = b.conv("c1", x, ConvParams::square(96, 11, 4, 0)).unwrap();
        assert_eq!(
            b.build().unwrap().node(c).output_shape,
            Shape::new(1, 96, 55, 55)
        );
    }

    #[test]
    fn pool_ceil_mode_matches_caffe() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 96, 55, 55));
        // AlexNet pool1: 3x3 stride 2 ceil -> 27x27 (floor would give 27 too);
        // GoogLeNet pool: 3x3 s2 on 28 -> ceil((28-3)/2)+1 = 14.
        let p = b
            .pool("p", x, PoolParams::square(PoolKind::Max, 3, 2, 0))
            .unwrap();
        assert_eq!(b.nodes[p.0].output_shape.h, 27);
        let mut b2 = NetworkBuilder::new("t2");
        let x2 = b2.input(Shape::new(1, 192, 28, 28));
        let p2 = b2
            .pool("p", x2, PoolParams::square(PoolKind::Max, 3, 2, 0))
            .unwrap();
        assert_eq!(b2.nodes[p2.0].output_shape.h, 14);
    }

    #[test]
    fn depthwise_keeps_channels() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 32, 112, 112));
        let d = b
            .depthwise_conv("dw", x, ConvParams::square(0, 3, 2, 1))
            .unwrap();
        assert_eq!(b.nodes[d.0].output_shape, Shape::new(1, 32, 56, 56));
    }

    #[test]
    fn concat_sums_channels() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 8, 4, 4));
        let a = b.conv("a", x, ConvParams::square(4, 1, 1, 0)).unwrap();
        let c = b.conv("b", x, ConvParams::square(6, 1, 1, 0)).unwrap();
        let cat = b.concat("cat", &[a, c]).unwrap();
        assert_eq!(b.nodes[cat.0].output_shape.c, 10);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 8, 4, 4));
        let a = b.conv("a", x, ConvParams::square(4, 1, 1, 0)).unwrap();
        let c = b.conv("b", x, ConvParams::square(6, 3, 2, 1)).unwrap();
        assert!(matches!(
            b.concat("cat", &[a, c]),
            Err(GraphError::ShapeError { .. })
        ));
    }

    #[test]
    fn concat_requires_two_inputs() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 8, 4, 4));
        assert!(matches!(
            b.concat("cat", &[x]),
            Err(GraphError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn add_requires_equal_shapes() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 8, 4, 4));
        let a = b.conv("a", x, ConvParams::square(8, 3, 1, 1)).unwrap();
        let ok = b.add("add", x, a);
        assert!(ok.is_ok());
        let c = b.conv("c", x, ConvParams::square(4, 1, 1, 0)).unwrap();
        assert!(b.add("bad", x, c).is_err());
    }

    #[test]
    fn unknown_input_is_reported() {
        let mut b = NetworkBuilder::new("t");
        let err = b.conv("c", LayerId(42), ConvParams::square(8, 3, 1, 1));
        assert!(matches!(
            err,
            Err(GraphError::UnknownInput { input: 42, .. })
        ));
    }

    #[test]
    fn oversized_window_is_rejected() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input(Shape::new(1, 3, 4, 4));
        assert!(b.conv("c", x, ConvParams::square(8, 7, 1, 0)).is_err());
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            NetworkBuilder::new("e").build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn macs_and_params_total() {
        let net = tiny();
        assert!(net.total_macs() > 0);
        // conv: 4*3*9+4 = 112; fc: 64*10+10 = 650.
        assert_eq!(net.total_params(), 112 + 650);
    }
}
