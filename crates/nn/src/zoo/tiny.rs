use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, Network, NetworkBuilder, PoolKind, PoolParams};

/// A small but complete CNN (16×16 input) that runs in milliseconds on the
/// *measured* platform — used by executor correctness tests and examples.
///
/// Not part of the paper roster.
pub fn tiny_cnn(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("tiny_cnn");
    let x = b.input(Shape::new(batch, 3, 16, 16));
    let c1 = b
        .conv("conv1", x, ConvParams::square(8, 3, 1, 1))
        .expect("static shapes");
    let b1 = b.batch_norm("bn1", c1);
    let r1 = b.relu("relu1", b1);
    let p1 = b
        .pool("pool1", r1, PoolParams::square(PoolKind::Max, 2, 2, 0))
        .expect("fits");
    let d1 = b
        .depthwise_conv("dw1", p1, ConvParams::square(0, 3, 1, 1))
        .expect("fits");
    let r2 = b.relu("relu2", d1);
    let c2 = b
        .conv("conv2", r2, ConvParams::square(16, 1, 1, 0))
        .expect("fits");
    let r3 = b.relu("relu3", c2);
    let p2 = b
        .pool("pool2", r3, PoolParams::square(PoolKind::Avg, 2, 2, 0))
        .expect("fits");
    let f = b.fc("fc", p2, FcParams::new(10)).expect("fits");
    b.softmax("prob", f);
    b.build().expect("non-empty")
}

/// A tiny *branchy* network (concat + residual add) small enough for
/// exhaustive search — used to validate QS-DNN against the true optimum on
/// non-chain topologies.
///
/// Not part of the paper roster.
pub fn toy_branchy(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("toy_branchy");
    let x = b.input(Shape::new(batch, 4, 8, 8));
    let a = b
        .conv("branch_a", x, ConvParams::square(4, 1, 1, 0))
        .expect("static shapes");
    let c = b
        .conv("branch_b", x, ConvParams::square(4, 3, 1, 1))
        .expect("fits");
    let cat = b.concat("concat", &[a, c]).expect("spatial extents match");
    let c2 = b
        .conv("conv2", cat, ConvParams::square(8, 3, 1, 1))
        .expect("fits");
    let add = b.add("residual", c2, cat).expect("shapes match");
    let r = b.relu("relu", add);
    let f = b.fc("fc", r, FcParams::new(4)).expect("fits");
    b.softmax("prob", f);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn tiny_cnn_is_small() {
        let net = tiny_cnn(1);
        assert!(net.total_macs() < 1_000_000);
        assert_eq!(
            net.layers().last().unwrap().output_shape,
            Shape::vector(1, 10)
        );
    }

    #[test]
    fn tiny_cnn_has_depthwise() {
        let net = tiny_cnn(1);
        assert!(net
            .layers()
            .iter()
            .any(|l| l.desc.tag() == LayerTag::DepthwiseConv));
    }

    #[test]
    fn toy_branchy_has_joins() {
        let net = toy_branchy(1);
        assert!(net
            .layers()
            .iter()
            .any(|l| l.desc.tag() == LayerTag::Concat));
        assert!(net.layers().iter().any(|l| l.desc.tag() == LayerTag::Add));
        // The concat output feeds two consumers: conv2 and the residual add.
        let cat = net
            .layers()
            .iter()
            .find(|l| l.desc.tag() == LayerTag::Concat)
            .unwrap();
        assert_eq!(net.consumers()[cat.id.0].len(), 2);
    }
}
