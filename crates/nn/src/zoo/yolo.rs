use qsdnn_tensor::Shape;

use crate::{ConvParams, Network, NetworkBuilder, PoolKind, PoolParams};

/// Tiny-YOLO-v2 (416×416 input, VOC head: 125 = 5 anchors × 25 channels).
///
/// Stands in for the paper's object-detection workload: nine convolutions
/// with batch-norm + activation and six max-pools over a large spatial
/// input, so early layers are bandwidth-bound where later ones are
/// compute-bound — a regime split the primitive selection must navigate.
pub fn tiny_yolo_v2(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("tiny_yolo_v2");
    let x = b.input(Shape::new(batch, 3, 416, 416));

    let mut cur = x;
    let channels = [16, 32, 64, 128, 256, 512];
    for (i, ch) in channels.iter().enumerate() {
        let n = i + 1;
        let c = b
            .conv(&format!("conv{n}"), cur, ConvParams::square(*ch, 3, 1, 1))
            .expect("static shapes");
        let bn = b.batch_norm(&format!("bn{n}"), c);
        let r = b.relu(&format!("leaky{n}"), bn);
        // The sixth pool in the Darknet config is stride-1; floor mode keeps
        // the 13x13 grid close (12x12 here, see DESIGN.md §5).
        let (stride, name) = if n == 6 { (1, "pool6") } else { (2, "poolx") };
        let pname = if n == 6 {
            name.to_string()
        } else {
            format!("pool{n}")
        };
        cur = b
            .pool(
                &pname,
                r,
                PoolParams::square(PoolKind::Max, 2, stride, 0).with_floor(),
            )
            .expect("fits");
    }

    for (i, ch) in [1024usize, 1024].iter().enumerate() {
        let n = i + 7;
        let c = b
            .conv(&format!("conv{n}"), cur, ConvParams::square(*ch, 3, 1, 1))
            .expect("fits");
        let bn = b.batch_norm(&format!("bn{n}"), c);
        cur = b.relu(&format!("leaky{n}"), bn);
    }
    b.conv("conv9", cur, ConvParams::square(125, 1, 1, 0))
        .expect("fits");
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn nine_convolutions_six_pools() {
        let net = tiny_yolo_v2(1);
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Conv)
            .count();
        let pools = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Pool)
            .count();
        assert_eq!(convs, 9);
        assert_eq!(pools, 6);
    }

    #[test]
    fn detection_head_shape() {
        let net = tiny_yolo_v2(1);
        let last = net.layers().last().unwrap();
        assert_eq!(last.desc.name, "conv9");
        assert_eq!(last.output_shape.c, 125);
        assert_eq!(last.output_shape.h, 12);
    }

    #[test]
    fn early_layers_have_large_spatial_extent() {
        let net = tiny_yolo_v2(1);
        let c1 = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv1")
            .unwrap();
        assert_eq!(c1.output_shape, Shape::new(1, 16, 416, 416));
    }
}
