use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, LayerId, Network, NetworkBuilder, PoolKind, PoolParams};

/// One ResNet basic block: conv-bn-relu-conv-bn + shortcut, final relu.
fn basic_block(
    b: &mut NetworkBuilder,
    from: LayerId,
    name: &str,
    channels: usize,
    stride: usize,
    downsample: bool,
) -> LayerId {
    let c1 = b
        .conv(
            &format!("{name}/conv1"),
            from,
            ConvParams::square(channels, 3, stride, 1),
        )
        .expect("static shapes");
    let b1 = b.batch_norm(&format!("{name}/bn1"), c1);
    let r1 = b.relu(&format!("{name}/relu1"), b1);
    let c2 = b
        .conv(
            &format!("{name}/conv2"),
            r1,
            ConvParams::square(channels, 3, 1, 1),
        )
        .expect("fits");
    let b2 = b.batch_norm(&format!("{name}/bn2"), c2);
    let shortcut = if downsample {
        let ds = b
            .conv(
                &format!("{name}/downsample"),
                from,
                ConvParams::square(channels, 1, stride, 0),
            )
            .expect("fits");
        b.batch_norm(&format!("{name}/downsample_bn"), ds)
    } else {
        from
    };
    let add = b
        .add(&format!("{name}/add"), b2, shortcut)
        .expect("shapes match");
    b.relu(&format!("{name}/relu2"), add)
}

/// ResNet-18 (224×224 input) with floor-mode stem pooling (PyTorch
/// semantics, 56×56 after the stem).
///
/// Residual `Add` layers create multi-producer joins, exercising the
/// penalty accounting on non-serialized edges.
pub fn resnet18(batch: usize) -> Network {
    resnet("resnet18", batch, [2, 2, 2, 2])
}

/// ResNet-34 (224×224 input): the deeper basic-block variant
/// (3/4/6/3 blocks per stage). Not in the paper's Table II; included for
/// roster breadth and scalability experiments.
pub fn resnet34(batch: usize) -> Network {
    resnet("resnet34", batch, [3, 4, 6, 3])
}

fn resnet(name: &str, batch: usize, blocks_per_stage: [usize; 4]) -> Network {
    let mut b = NetworkBuilder::new(name);
    let x = b.input(Shape::new(batch, 3, 224, 224));
    let c1 = b
        .conv("conv1", x, ConvParams::square(64, 7, 2, 3))
        .expect("static shapes");
    let b1 = b.batch_norm("bn1", c1);
    let r1 = b.relu("relu1", b1);
    let p1 = b
        .pool(
            "maxpool",
            r1,
            PoolParams::square(PoolKind::Max, 3, 2, 1).with_floor(),
        )
        .expect("fits");

    let mut cur = p1;
    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
    for (si, (ch, first_stride)) in stages.iter().enumerate() {
        for bi in 0..blocks_per_stage[si] {
            let name = format!("layer{}_{}", si + 1, bi);
            let stride = if bi == 0 { *first_stride } else { 1 };
            let downsample = bi == 0 && *first_stride != 1;
            cur = basic_block(&mut b, cur, &name, *ch, stride, downsample);
        }
    }

    let gp = b
        .pool("avgpool", cur, PoolParams::global(PoolKind::Avg))
        .expect("fits");
    let fc = b.fc("fc", gp, FcParams::new(1000)).expect("fits");
    b.softmax("prob", fc);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn eight_residual_adds() {
        let net = resnet18(1);
        let adds = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Add)
            .count();
        assert_eq!(adds, 8);
    }

    #[test]
    fn twenty_convs_including_downsamples() {
        let net = resnet18(1);
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Conv)
            .count();
        // 1 stem + 16 block convs + 3 downsamples.
        assert_eq!(convs, 20);
    }

    #[test]
    fn canonical_stage_shapes() {
        let net = resnet18(1);
        let find = |name: &str| {
            net.layers()
                .iter()
                .find(|l| l.desc.name == name)
                .unwrap()
                .output_shape
        };
        assert_eq!(find("maxpool"), Shape::new(1, 64, 56, 56));
        assert_eq!(find("layer2_0/relu2"), Shape::new(1, 128, 28, 28));
        assert_eq!(find("layer4_1/relu2"), Shape::new(1, 512, 7, 7));
    }
}
