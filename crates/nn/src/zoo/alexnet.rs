use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, LrnParams, Network, NetworkBuilder, PoolKind, PoolParams};

/// AlexNet (single-tower Caffe variant, 227×227 input).
///
/// Conv-heavy front with two LRN layers and three giant FC layers; the FC
/// layers are where cuDNN has *no primitive* in the paper, so the GPGPU-mode
/// search must route them to cuBLAS GEMV or back to the CPU.
pub fn alexnet(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("alexnet");
    let x = b.input(Shape::new(batch, 3, 227, 227));
    let c1 = b
        .conv("conv1", x, ConvParams::square(96, 11, 4, 0))
        .expect("static shapes");
    let r1 = b.relu("relu1", c1);
    let n1 = b.lrn("norm1", r1, LrnParams::default());
    let p1 = b
        .pool("pool1", n1, PoolParams::square(PoolKind::Max, 3, 2, 0))
        .expect("fits");
    let c2 = b
        .conv("conv2", p1, ConvParams::square(256, 5, 1, 2))
        .expect("fits");
    let r2 = b.relu("relu2", c2);
    let n2 = b.lrn("norm2", r2, LrnParams::default());
    let p2 = b
        .pool("pool2", n2, PoolParams::square(PoolKind::Max, 3, 2, 0))
        .expect("fits");
    let c3 = b
        .conv("conv3", p2, ConvParams::square(384, 3, 1, 1))
        .expect("fits");
    let r3 = b.relu("relu3", c3);
    let c4 = b
        .conv("conv4", r3, ConvParams::square(384, 3, 1, 1))
        .expect("fits");
    let r4 = b.relu("relu4", c4);
    let c5 = b
        .conv("conv5", r4, ConvParams::square(256, 3, 1, 1))
        .expect("fits");
    let r5 = b.relu("relu5", c5);
    let p5 = b
        .pool("pool5", r5, PoolParams::square(PoolKind::Max, 3, 2, 0))
        .expect("fits");
    let f6 = b
        .fc("fc6", p5, FcParams::new(4096).with_density(0.25))
        .expect("fits");
    let r6 = b.relu("relu6", f6);
    let f7 = b
        .fc("fc7", r6, FcParams::new(4096).with_density(0.25))
        .expect("fits");
    let r7 = b.relu("relu7", f7);
    let f8 = b.fc("fc8", r7, FcParams::new(1000)).expect("fits");
    b.softmax("prob", f8);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerId, LayerTag};

    #[test]
    fn canonical_shapes() {
        let net = alexnet(1);
        assert_eq!(net.node(LayerId(1)).output_shape, Shape::new(1, 96, 55, 55));
        assert_eq!(net.node(LayerId(4)).output_shape, Shape::new(1, 96, 27, 27));
        assert_eq!(
            net.node(LayerId(8)).output_shape,
            Shape::new(1, 256, 13, 13)
        );
        assert_eq!(net.node(LayerId(15)).output_shape, Shape::new(1, 256, 6, 6));
        assert_eq!(net.node(LayerId(16)).output_shape, Shape::vector(1, 4096));
    }

    #[test]
    fn has_two_lrn_layers() {
        let n = alexnet(1)
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Lrn)
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn fc_layers_are_sparsifiable() {
        let net = alexnet(1);
        let fc6 = net.layers().iter().find(|l| l.desc.name == "fc6").unwrap();
        match &fc6.desc.kind {
            crate::LayerKind::Fc(p) => assert!((p.weight_density - 0.25).abs() < 1e-6),
            other => panic!("unexpected kind {other:?}"),
        }
    }
}
