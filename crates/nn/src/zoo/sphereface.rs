use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, LayerId, Network, NetworkBuilder};

/// One SphereFace residual unit: two 3×3 convolutions plus identity add.
fn res_unit(b: &mut NetworkBuilder, from: LayerId, name: &str, channels: usize) -> LayerId {
    let c1 = b
        .conv(
            &format!("{name}/conv1"),
            from,
            ConvParams::square(channels, 3, 1, 1),
        )
        .expect("static shapes");
    let r1 = b.relu(&format!("{name}/relu1"), c1);
    let c2 = b
        .conv(
            &format!("{name}/conv2"),
            r1,
            ConvParams::square(channels, 3, 1, 1),
        )
        .expect("fits");
    let r2 = b.relu(&format!("{name}/relu2"), c2);
    b.add(&format!("{name}/add"), r2, from)
        .expect("shapes match")
}

/// SphereFace-20-style face-recognition CNN (112×96 RGB face crops,
/// 512-d embedding output, no softmax).
///
/// Stands in for the paper's face-recognition workload: a 20-convolution
/// residual net with stride-2 stage heads (64→128→256→512 channels).
pub fn sphereface20(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("sphereface20");
    let x = b.input(Shape::new(batch, 3, 112, 96));

    // (stage channels, number of residual units). Conv count:
    // 4 stage heads + 2*(1+2+4+1) = 20.
    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 4), (512, 1)];
    let mut cur = x;
    for (si, (ch, units)) in stages.iter().enumerate() {
        let head = b
            .conv(
                &format!("conv{}_1", si + 1),
                cur,
                ConvParams::square(*ch, 3, 2, 1),
            )
            .expect("static shapes");
        cur = b.relu(&format!("relu{}_1", si + 1), head);
        for ui in 0..*units {
            cur = res_unit(&mut b, cur, &format!("res{}_{}", si + 1, ui + 1), *ch);
        }
    }
    b.fc("fc5", cur, FcParams::new(512)).expect("fits");
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn twenty_convolutions() {
        let net = sphereface20(1);
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Conv)
            .count();
        assert_eq!(convs, 20);
    }

    #[test]
    fn embedding_output_is_512d() {
        let net = sphereface20(1);
        let last = net.layers().last().unwrap();
        assert_eq!(last.desc.tag(), LayerTag::Fc);
        assert_eq!(last.output_shape, Shape::vector(1, 512));
    }

    #[test]
    fn stage_spatial_extents_halve() {
        let net = sphereface20(1);
        let find = |name: &str| {
            net.layers()
                .iter()
                .find(|l| l.desc.name == name)
                .unwrap()
                .output_shape
        };
        assert_eq!(find("relu1_1"), Shape::new(1, 64, 56, 48));
        assert_eq!(find("relu4_1"), Shape::new(1, 512, 7, 6));
    }
}
