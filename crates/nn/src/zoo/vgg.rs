use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, LayerId, Network, NetworkBuilder, PoolKind, PoolParams};

/// VGG-19 (224×224 input): sixteen 3×3 convolutions in five blocks plus
/// three FC layers.
///
/// The largest design space in the paper roster — all convs are 3×3/s1, so
/// Winograd-capable libraries compete everywhere, and the 103 M-MAC `fc6`
/// dominates any implementation that lacks a fast FC primitive (cuDNN).
pub fn vgg19(batch: usize) -> Network {
    vgg(
        "vgg19",
        batch,
        [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)],
    )
}

/// VGG-16 (224×224 input): thirteen 3×3 convolutions in five blocks plus
/// three FC layers. Not in the paper's Table II; included for roster
/// breadth.
pub fn vgg16(batch: usize) -> Network {
    vgg(
        "vgg16",
        batch,
        [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)],
    )
}

fn vgg(name: &str, batch: usize, blocks: [(usize, usize); 5]) -> Network {
    let mut b = NetworkBuilder::new(name);
    let x = b.input(Shape::new(batch, 3, 224, 224));
    let mut cur: LayerId = x;
    for (bi, (ch, reps)) in blocks.iter().enumerate() {
        for ri in 0..*reps {
            let cname = format!("conv{}_{}", bi + 1, ri + 1);
            let rname = format!("relu{}_{}", bi + 1, ri + 1);
            cur = b
                .conv(&cname, cur, ConvParams::square(*ch, 3, 1, 1))
                .expect("static shapes");
            cur = b.relu(&rname, cur);
        }
        cur = b
            .pool(
                &format!("pool{}", bi + 1),
                cur,
                PoolParams::square(PoolKind::Max, 2, 2, 0),
            )
            .expect("fits");
    }
    let f6 = b
        .fc("fc6", cur, FcParams::new(4096).with_density(0.25))
        .expect("fits");
    let r6 = b.relu("relu6", f6);
    let f7 = b
        .fc("fc7", r6, FcParams::new(4096).with_density(0.25))
        .expect("fits");
    let r7 = b.relu("relu7", f7);
    let f8 = b.fc("fc8", r7, FcParams::new(1000)).expect("fits");
    b.softmax("prob", f8);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn sixteen_convs_five_pools() {
        let net = vgg19(1);
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Conv)
            .count();
        let pools = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Pool)
            .count();
        assert_eq!(convs, 16);
        assert_eq!(pools, 5);
    }

    #[test]
    fn final_feature_map_is_7x7x512() {
        let net = vgg19(1);
        let pool5 = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "pool5")
            .unwrap();
        assert_eq!(pool5.output_shape, Shape::new(1, 512, 7, 7));
    }

    #[test]
    fn fc6_dominates_parameters() {
        let net = vgg19(1);
        let fc6 = net.layers().iter().find(|l| l.desc.name == "fc6").unwrap();
        let fc6_params = fc6.desc.param_count(&net.input_shapes(fc6.id));
        // 25088*4096+4096 ≈ 102.8M of ~143.6M total.
        assert!(fc6_params as f64 > 0.7 * net.total_params() as f64 * 0.95);
        assert_eq!(fc6_params, 25088 * 4096 + 4096);
    }
}
