use qsdnn_tensor::Shape;

use crate::{
    ConvParams, FcParams, LayerId, LrnParams, Network, NetworkBuilder, PoolKind, PoolParams,
};

/// Channel configuration of one inception module.
struct Inception {
    name: &'static str,
    b1: usize,
    b2_reduce: usize,
    b2: usize,
    b3_reduce: usize,
    b3: usize,
    b4: usize,
}

fn inception(b: &mut NetworkBuilder, from: LayerId, cfg: &Inception) -> LayerId {
    let n = cfg.name;
    // Branch 1: 1x1.
    let c1 = b
        .conv(
            &format!("{n}/1x1"),
            from,
            ConvParams::square(cfg.b1, 1, 1, 0),
        )
        .expect("static shapes");
    let r1 = b.relu(&format!("{n}/relu_1x1"), c1);
    // Branch 2: 1x1 reduce -> 3x3.
    let c2r = b
        .conv(
            &format!("{n}/3x3_reduce"),
            from,
            ConvParams::square(cfg.b2_reduce, 1, 1, 0),
        )
        .expect("fits");
    let r2r = b.relu(&format!("{n}/relu_3x3_reduce"), c2r);
    let c2 = b
        .conv(
            &format!("{n}/3x3"),
            r2r,
            ConvParams::square(cfg.b2, 3, 1, 1),
        )
        .expect("fits");
    let r2 = b.relu(&format!("{n}/relu_3x3"), c2);
    // Branch 3: 1x1 reduce -> 5x5.
    let c3r = b
        .conv(
            &format!("{n}/5x5_reduce"),
            from,
            ConvParams::square(cfg.b3_reduce, 1, 1, 0),
        )
        .expect("fits");
    let r3r = b.relu(&format!("{n}/relu_5x5_reduce"), c3r);
    let c3 = b
        .conv(
            &format!("{n}/5x5"),
            r3r,
            ConvParams::square(cfg.b3, 5, 1, 2),
        )
        .expect("fits");
    let r3 = b.relu(&format!("{n}/relu_5x5"), c3);
    // Branch 4: 3x3 maxpool (stride 1) -> 1x1 projection.
    let p4 = b
        .pool(
            &format!("{n}/pool"),
            from,
            PoolParams::square(PoolKind::Max, 3, 1, 1),
        )
        .expect("fits");
    let c4 = b
        .conv(
            &format!("{n}/pool_proj"),
            p4,
            ConvParams::square(cfg.b4, 1, 1, 0),
        )
        .expect("fits");
    let r4 = b.relu(&format!("{n}/relu_pool_proj"), c4);
    b.concat(&format!("{n}/output"), &[r1, r2, r3, r4])
        .expect("branches agree")
}

/// GoogLeNet (Inception-v1, 224×224 input, auxiliary heads omitted).
///
/// Nine inception modules — the branchiest network in the roster, exercising
/// the profiler's "exceptions and branches are handled" path (paper Fig. 3)
/// and one of the two largest RL-vs-RS gaps (Table II).
pub fn googlenet(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("googlenet");
    let x = b.input(Shape::new(batch, 3, 224, 224));
    let c1 = b
        .conv("conv1/7x7_s2", x, ConvParams::square(64, 7, 2, 3))
        .expect("static shapes");
    let r1 = b.relu("conv1/relu_7x7", c1);
    let p1 = b
        .pool(
            "pool1/3x3_s2",
            r1,
            PoolParams::square(PoolKind::Max, 3, 2, 0),
        )
        .expect("fits");
    let n1 = b.lrn("pool1/norm1", p1, LrnParams::default());
    let c2r = b
        .conv("conv2/3x3_reduce", n1, ConvParams::square(64, 1, 1, 0))
        .expect("fits");
    let r2r = b.relu("conv2/relu_3x3_reduce", c2r);
    let c2 = b
        .conv("conv2/3x3", r2r, ConvParams::square(192, 3, 1, 1))
        .expect("fits");
    let r2 = b.relu("conv2/relu_3x3", c2);
    let n2 = b.lrn("conv2/norm2", r2, LrnParams::default());
    let p2 = b
        .pool(
            "pool2/3x3_s2",
            n2,
            PoolParams::square(PoolKind::Max, 3, 2, 0),
        )
        .expect("fits");

    let stage3 = [
        Inception {
            name: "inception_3a",
            b1: 64,
            b2_reduce: 96,
            b2: 128,
            b3_reduce: 16,
            b3: 32,
            b4: 32,
        },
        Inception {
            name: "inception_3b",
            b1: 128,
            b2_reduce: 128,
            b2: 192,
            b3_reduce: 32,
            b3: 96,
            b4: 64,
        },
    ];
    let mut cur = p2;
    for cfg in &stage3 {
        cur = inception(&mut b, cur, cfg);
    }
    cur = b
        .pool(
            "pool3/3x3_s2",
            cur,
            PoolParams::square(PoolKind::Max, 3, 2, 0),
        )
        .expect("fits");

    let stage4 = [
        Inception {
            name: "inception_4a",
            b1: 192,
            b2_reduce: 96,
            b2: 208,
            b3_reduce: 16,
            b3: 48,
            b4: 64,
        },
        Inception {
            name: "inception_4b",
            b1: 160,
            b2_reduce: 112,
            b2: 224,
            b3_reduce: 24,
            b3: 64,
            b4: 64,
        },
        Inception {
            name: "inception_4c",
            b1: 128,
            b2_reduce: 128,
            b2: 256,
            b3_reduce: 24,
            b3: 64,
            b4: 64,
        },
        Inception {
            name: "inception_4d",
            b1: 112,
            b2_reduce: 144,
            b2: 288,
            b3_reduce: 32,
            b3: 64,
            b4: 64,
        },
        Inception {
            name: "inception_4e",
            b1: 256,
            b2_reduce: 160,
            b2: 320,
            b3_reduce: 32,
            b3: 128,
            b4: 128,
        },
    ];
    for cfg in &stage4 {
        cur = inception(&mut b, cur, cfg);
    }
    cur = b
        .pool(
            "pool4/3x3_s2",
            cur,
            PoolParams::square(PoolKind::Max, 3, 2, 0),
        )
        .expect("fits");

    let stage5 = [
        Inception {
            name: "inception_5a",
            b1: 256,
            b2_reduce: 160,
            b2: 320,
            b3_reduce: 32,
            b3: 128,
            b4: 128,
        },
        Inception {
            name: "inception_5b",
            b1: 384,
            b2_reduce: 192,
            b2: 384,
            b3_reduce: 48,
            b3: 128,
            b4: 128,
        },
    ];
    for cfg in &stage5 {
        cur = inception(&mut b, cur, cfg);
    }
    let gp = b
        .pool("pool5/global", cur, PoolParams::global(PoolKind::Avg))
        .expect("fits");
    let fc = b
        .fc("loss3/classifier", gp, FcParams::new(1000))
        .expect("fits");
    b.softmax("prob", fc);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn nine_inception_modules() {
        let net = googlenet(1);
        let concats = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Concat)
            .count();
        assert_eq!(concats, 9);
    }

    #[test]
    fn canonical_stage_shapes() {
        let net = googlenet(1);
        let find = |name: &str| {
            net.layers()
                .iter()
                .find(|l| l.desc.name == name)
                .unwrap()
                .output_shape
        };
        assert_eq!(find("pool2/3x3_s2"), Shape::new(1, 192, 28, 28));
        assert_eq!(find("inception_3a/output"), Shape::new(1, 256, 28, 28));
        assert_eq!(find("inception_3b/output"), Shape::new(1, 480, 28, 28));
        assert_eq!(find("inception_4e/output"), Shape::new(1, 832, 14, 14));
        assert_eq!(find("inception_5b/output"), Shape::new(1, 1024, 7, 7));
    }

    #[test]
    fn is_a_dag_with_branches() {
        let net = googlenet(1);
        let multi_consumer = net.consumers().iter().filter(|c| c.len() > 1).count();
        // Every inception input fans out to 4 branches.
        assert!(multi_consumer >= 9);
    }
}
