use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, Network, NetworkBuilder, PoolKind, PoolParams};

/// LeNet-5 (Caffe variant) on 28×28 grayscale MNIST digits.
///
/// The smallest paper network: in GPGPU mode its optimal implementation is
/// *pure CPU*, because CPU↔GPU transfers dwarf the tiny layer times — the
/// paper's §VI.A observation that QS-DNN discovers on its own.
pub fn lenet5(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("lenet5");
    let x = b.input(Shape::new(batch, 1, 28, 28));
    let c1 = b
        .conv("conv1", x, ConvParams::square(20, 5, 1, 0))
        .expect("static shapes");
    let p1 = b
        .pool("pool1", c1, PoolParams::square(PoolKind::Max, 2, 2, 0))
        .expect("fits");
    let c2 = b
        .conv("conv2", p1, ConvParams::square(50, 5, 1, 0))
        .expect("fits");
    let p2 = b
        .pool("pool2", c2, PoolParams::square(PoolKind::Max, 2, 2, 0))
        .expect("fits");
    let f1 = b.fc("ip1", p2, FcParams::new(500)).expect("fits");
    let r1 = b.relu("relu1", f1);
    let f2 = b.fc("ip2", r1, FcParams::new(10)).expect("fits");
    b.softmax("prob", f2);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerId;

    #[test]
    fn canonical_shapes() {
        let net = lenet5(1);
        assert_eq!(net.node(LayerId(1)).output_shape, Shape::new(1, 20, 24, 24));
        assert_eq!(net.node(LayerId(2)).output_shape, Shape::new(1, 20, 12, 12));
        assert_eq!(net.node(LayerId(3)).output_shape, Shape::new(1, 50, 8, 8));
        assert_eq!(net.node(LayerId(4)).output_shape, Shape::new(1, 50, 4, 4));
        assert_eq!(net.node(LayerId(5)).output_shape, Shape::vector(1, 500));
    }

    #[test]
    fn param_count_matches_caffe() {
        // conv1: 20*1*25+20; conv2: 50*20*25+50; ip1: 800*500+500; ip2: 500*10+10.
        assert_eq!(lenet5(1).total_params(), 520 + 25_050 + 400_500 + 5_010);
    }
}
