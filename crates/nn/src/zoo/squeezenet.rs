use qsdnn_tensor::Shape;

use crate::{ConvParams, LayerId, Network, NetworkBuilder, PoolKind, PoolParams};

fn fire(
    b: &mut NetworkBuilder,
    from: LayerId,
    name: &str,
    squeeze: usize,
    expand: usize,
) -> LayerId {
    let s = b
        .conv(
            &format!("{name}/squeeze1x1"),
            from,
            ConvParams::square(squeeze, 1, 1, 0),
        )
        .expect("static shapes");
    let sr = b.relu(&format!("{name}/relu_squeeze"), s);
    let e1 = b
        .conv(
            &format!("{name}/expand1x1"),
            sr,
            ConvParams::square(expand, 1, 1, 0),
        )
        .expect("fits");
    let e1r = b.relu(&format!("{name}/relu_expand1x1"), e1);
    let e3 = b
        .conv(
            &format!("{name}/expand3x3"),
            sr,
            ConvParams::square(expand, 3, 1, 1),
        )
        .expect("fits");
    let e3r = b.relu(&format!("{name}/relu_expand3x3"), e3);
    b.concat(&format!("{name}/concat"), &[e1r, e3r])
        .expect("equal spatial extents")
}

/// SqueezeNet v1.1 (227×227 input): eight fire modules, no FC layers.
///
/// A compact classification net whose 1×1-heavy profile favours GEMM
/// lowerings over Winograd and gives the Sparse library its best shot.
pub fn squeezenet_v11(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("squeezenet_v11");
    let x = b.input(Shape::new(batch, 3, 227, 227));
    let c1 = b
        .conv("conv1", x, ConvParams::square(64, 3, 2, 0))
        .expect("static shapes");
    let r1 = b.relu("relu_conv1", c1);
    let p1 = b
        .pool("pool1", r1, PoolParams::square(PoolKind::Max, 3, 2, 0))
        .expect("fits");
    let f2 = fire(&mut b, p1, "fire2", 16, 64);
    let f3 = fire(&mut b, f2, "fire3", 16, 64);
    let p3 = b
        .pool("pool3", f3, PoolParams::square(PoolKind::Max, 3, 2, 0))
        .expect("fits");
    let f4 = fire(&mut b, p3, "fire4", 32, 128);
    let f5 = fire(&mut b, f4, "fire5", 32, 128);
    let p5 = b
        .pool("pool5", f5, PoolParams::square(PoolKind::Max, 3, 2, 0))
        .expect("fits");
    let f6 = fire(&mut b, p5, "fire6", 48, 192);
    let f7 = fire(&mut b, f6, "fire7", 48, 192);
    let f8 = fire(&mut b, f7, "fire8", 64, 256);
    let f9 = fire(&mut b, f8, "fire9", 64, 256);
    let c10 = b
        .conv("conv10", f9, ConvParams::square(1000, 1, 1, 0))
        .expect("fits");
    let r10 = b.relu("relu_conv10", c10);
    let gp = b
        .pool("pool10", r10, PoolParams::global(PoolKind::Avg))
        .expect("fits");
    b.softmax("prob", gp);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn eight_fire_modules() {
        let net = squeezenet_v11(1);
        let concats = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Concat)
            .count();
        assert_eq!(concats, 8);
    }

    #[test]
    fn no_fc_layers() {
        let net = squeezenet_v11(1);
        assert!(net.layers().iter().all(|l| l.desc.tag() != LayerTag::Fc));
    }

    #[test]
    fn canonical_shapes() {
        let net = squeezenet_v11(1);
        let find = |name: &str| {
            net.layers()
                .iter()
                .find(|l| l.desc.name == name)
                .unwrap()
                .output_shape
        };
        assert_eq!(find("pool1"), Shape::new(1, 64, 56, 56));
        assert_eq!(find("fire3/concat"), Shape::new(1, 128, 56, 56));
        assert_eq!(find("fire9/concat"), Shape::new(1, 512, 14, 14));
        assert_eq!(find("pool10"), Shape::new(1, 1000, 1, 1));
    }
}
