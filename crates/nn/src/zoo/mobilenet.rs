use qsdnn_tensor::Shape;

use crate::{ConvParams, FcParams, LayerId, Network, NetworkBuilder, PoolKind, PoolParams};

/// MobileNet-v1 (1.0×, 224×224 input).
///
/// Thirteen depth-wise separable blocks. The paper's marquee GPGPU case: the
/// learned solution mixes ArmCL's optimized depth-wise kernels (CPU), cuDNN
/// pointwise convolutions (GPU) and Vanilla ReLU/BatchNorm to avoid extra
/// device copies, beating cuDNN-only by >1.4×.
pub fn mobilenet_v1(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("mobilenet_v1");
    let x = b.input(Shape::new(batch, 3, 224, 224));
    let c0 = b
        .conv("conv0", x, ConvParams::square(32, 3, 2, 1))
        .expect("static shapes");
    let b0 = b.batch_norm("conv0/bn", c0);
    let mut cur: LayerId = b.relu("conv0/relu", b0);

    // (stride of the depthwise conv, output channels of the pointwise conv)
    let blocks: [(usize, usize); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    for (i, (stride, out)) in blocks.iter().enumerate() {
        let n = i + 1;
        let dw = b
            .depthwise_conv(
                &format!("conv{n}/dw"),
                cur,
                ConvParams::square(0, 3, *stride, 1),
            )
            .expect("static shapes");
        let dwb = b.batch_norm(&format!("conv{n}/dw/bn"), dw);
        let dwr = b.relu(&format!("conv{n}/dw/relu"), dwb);
        let pw = b
            .conv(
                &format!("conv{n}/pw"),
                dwr,
                ConvParams::square(*out, 1, 1, 0),
            )
            .expect("fits");
        let pwb = b.batch_norm(&format!("conv{n}/pw/bn"), pw);
        cur = b.relu(&format!("conv{n}/pw/relu"), pwb);
    }

    let gp = b
        .pool("pool6", cur, PoolParams::global(PoolKind::Avg))
        .expect("fits");
    let fc = b.fc("fc7", gp, FcParams::new(1000)).expect("fits");
    b.softmax("prob", fc);
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn thirteen_depthwise_blocks() {
        let net = mobilenet_v1(1);
        let dws = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::DepthwiseConv)
            .count();
        assert_eq!(dws, 13);
        // 1 stem + 13 pointwise convolutions.
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::Conv)
            .count();
        assert_eq!(convs, 14);
    }

    #[test]
    fn final_feature_map_is_7x7x1024() {
        let net = mobilenet_v1(1);
        let last_relu = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv13/pw/relu")
            .unwrap();
        assert_eq!(last_relu.output_shape, Shape::new(1, 1024, 7, 7));
    }

    #[test]
    fn batchnorm_follows_every_conv() {
        let net = mobilenet_v1(1);
        let bns = net
            .layers()
            .iter()
            .filter(|l| l.desc.tag() == LayerTag::BatchNorm)
            .count();
        assert_eq!(bns, 27); // stem + 13 * (dw + pw)
    }
}
