//! The network zoo evaluated by the QS-DNN reproduction.
//!
//! Covers the paper's three task families: image classification (LeNet-5,
//! AlexNet, VGG-19, GoogLeNet, MobileNet-v1, SqueezeNet-v1.1, ResNet-18),
//! face recognition (SphereFace-20) and object detection (Tiny-YOLO-v2).
//! All weights are synthetic; only shapes matter for latency (see
//! DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! let nets = qsdnn_nn::zoo::paper_roster(1);
//! assert_eq!(nets.len(), 9);
//! assert!(qsdnn_nn::zoo::by_name("mobilenet_v1", 1).is_some());
//! ```

mod alexnet;
mod googlenet;
mod lenet;
mod mobilenet;
mod resnet;
mod sphereface;
mod squeezenet;
mod tiny;
mod vgg;
mod yolo;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use lenet::lenet5;
pub use mobilenet::mobilenet_v1;
pub use resnet::{resnet18, resnet34};
pub use sphereface::sphereface20;
pub use squeezenet::squeezenet_v11;
pub use tiny::{tiny_cnn, toy_branchy};
pub use vgg::{vgg16, vgg19};
pub use yolo::tiny_yolo_v2;

use crate::Network;

/// Names of the nine paper-roster networks, in Table II presentation order.
pub const PAPER_ROSTER: [&str; 9] = [
    "lenet5",
    "alexnet",
    "vgg19",
    "googlenet",
    "mobilenet_v1",
    "squeezenet_v11",
    "resnet18",
    "sphereface20",
    "tiny_yolo_v2",
];

/// Builds every paper-roster network at the given batch size.
pub fn paper_roster(batch: usize) -> Vec<Network> {
    PAPER_ROSTER
        .iter()
        .map(|n| by_name(n, batch).expect("roster name is valid"))
        .collect()
}

/// Builds a network by name; returns `None` for unknown names.
pub fn by_name(name: &str, batch: usize) -> Option<Network> {
    Some(match name {
        "lenet5" => lenet5(batch),
        "alexnet" => alexnet(batch),
        "vgg19" => vgg19(batch),
        "googlenet" => googlenet(batch),
        "mobilenet_v1" => mobilenet_v1(batch),
        "squeezenet_v11" => squeezenet_v11(batch),
        "resnet18" => resnet18(batch),
        "sphereface20" => sphereface20(batch),
        "tiny_yolo_v2" => tiny_yolo_v2(batch),
        "vgg16" => vgg16(batch),
        "resnet34" => resnet34(batch),
        "tiny_cnn" => tiny_cnn(batch),
        "toy_branchy" => toy_branchy(batch),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerTag;

    #[test]
    fn roster_builds_and_names_match() {
        for net in paper_roster(1) {
            assert!(PAPER_ROSTER.contains(&net.name()), "{}", net.name());
            assert!(net.len() > 5);
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("resnet999", 1).is_none());
    }

    #[test]
    fn batch_size_propagates() {
        let net = lenet5(4);
        assert!(net.layers().iter().all(|n| n.output_shape.n == 4));
    }

    #[test]
    fn classification_nets_end_in_softmax() {
        for name in [
            "lenet5",
            "alexnet",
            "vgg19",
            "googlenet",
            "mobilenet_v1",
            "squeezenet_v11",
            "resnet18",
        ] {
            let net = by_name(name, 1).unwrap();
            assert_eq!(
                net.layers().last().unwrap().desc.tag(),
                LayerTag::Softmax,
                "{name}"
            );
        }
    }

    #[test]
    fn known_macs_magnitudes() {
        // Sanity-check total MACs against published figures (±15%).
        let cases = [
            ("alexnet", 1.14e9, 0.1),       // ungrouped single-tower variant
            ("vgg19", 19.6e9, 0.15),        // ~19.6 GMACs
            ("googlenet", 1.6e9, 0.25),     // ~1.5-2 GMACs with aux heads removed
            ("mobilenet_v1", 0.57e9, 0.15), // ~569 MMACs
            ("resnet18", 1.8e9, 0.15),      // ~1.8 GMACs
        ];
        for (name, expect, tol) in cases {
            let macs = by_name(name, 1).unwrap().total_macs() as f64;
            let rel = (macs - expect).abs() / expect;
            assert!(
                rel < tol,
                "{name}: {macs:.3e} vs {expect:.3e} (rel {rel:.2})"
            );
        }
    }

    #[test]
    fn extra_networks_build_with_canonical_sizes() {
        let vgg16 = by_name("vgg16", 1).unwrap();
        assert!((vgg16.total_params() as f64 - 138.4e6).abs() / 138.4e6 < 0.05);
        assert!((vgg16.total_macs() as f64 - 15.5e9).abs() / 15.5e9 < 0.1);
        let resnet34 = by_name("resnet34", 1).unwrap();
        assert!((resnet34.total_params() as f64 - 21.8e6).abs() / 21.8e6 < 0.1);
        assert!((resnet34.total_macs() as f64 - 3.6e9).abs() / 3.6e9 < 0.1);
    }

    #[test]
    fn known_param_magnitudes() {
        let cases = [
            ("alexnet", 60.9e6, 0.1),
            ("vgg19", 143.6e6, 0.05),
            ("mobilenet_v1", 4.2e6, 0.15),
            ("squeezenet_v11", 1.24e6, 0.15),
            ("resnet18", 11.7e6, 0.1),
        ];
        for (name, expect, tol) in cases {
            let params = by_name(name, 1).unwrap().total_params() as f64;
            let rel = (params - expect).abs() / expect;
            assert!(
                rel < tol,
                "{name}: {params:.3e} vs {expect:.3e} (rel {rel:.2})"
            );
        }
    }
}
