use std::fmt;

/// Error type for network construction and shape inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A layer referenced an input id that does not exist (yet).
    UnknownInput {
        /// Name of the layer being added.
        layer: String,
        /// The dangling input id.
        input: usize,
    },
    /// A layer received an unexpected number of inputs.
    ArityMismatch {
        /// Name of the offending layer.
        layer: String,
        /// Inputs required.
        expected: &'static str,
        /// Inputs provided.
        got: usize,
    },
    /// Input shapes are incompatible with the layer parameters.
    ShapeError {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The network has no layers.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownInput { layer, input } => {
                write!(f, "layer `{layer}` references unknown input #{input}")
            }
            GraphError::ArityMismatch {
                layer,
                expected,
                got,
            } => {
                write!(f, "layer `{layer}` expects {expected} inputs, got {got}")
            }
            GraphError::ShapeError { layer, reason } => {
                write!(f, "layer `{layer}` shape error: {reason}")
            }
            GraphError::Empty => write!(f, "network contains no layers"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_layer_name() {
        let e = GraphError::UnknownInput {
            layer: "conv1".into(),
            input: 9,
        };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
