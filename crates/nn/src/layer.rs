use serde::{Deserialize, Serialize};

use qsdnn_tensor::Shape;

/// Parameters of a (grouped-free) 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvParams {
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel extents `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Strides `(sh, sw)`.
    pub stride: (usize, usize),
    /// Zero padding `(ph, pw)` applied on both sides.
    pub pad: (usize, usize),
    /// Whether a per-channel bias is added.
    pub bias: bool,
    /// Fraction of non-zero weights (1.0 = dense). Consumed by the *Sparse*
    /// library's cost/behaviour model.
    pub weight_density: f32,
}

impl ConvParams {
    /// Dense square convolution with equal stride/pad on both axes.
    pub fn square(out_channels: usize, k: usize, s: usize, p: usize) -> Self {
        ConvParams {
            out_channels,
            kernel: (k, k),
            stride: (s, s),
            pad: (p, p),
            bias: true,
            weight_density: 1.0,
        }
    }

    /// Returns a copy with the given weight density (for the Sparse library).
    pub fn with_density(mut self, density: f32) -> Self {
        self.weight_density = density;
        self
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Parameters of a pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolParams {
    /// Max or average.
    pub kind: PoolKind,
    /// Window extents `(kh, kw)`; ignored when `global`.
    pub kernel: (usize, usize),
    /// Strides `(sh, sw)`; ignored when `global`.
    pub stride: (usize, usize),
    /// Zero padding `(ph, pw)`; ignored when `global`.
    pub pad: (usize, usize),
    /// Global pooling collapses each channel to 1×1.
    pub global: bool,
    /// Ceil-mode output rounding (Caffe semantics) vs floor (PyTorch).
    pub ceil: bool,
}

impl PoolParams {
    /// Square local pooling window with Caffe ceil-mode rounding.
    pub fn square(kind: PoolKind, k: usize, s: usize, p: usize) -> Self {
        PoolParams {
            kind,
            kernel: (k, k),
            stride: (s, s),
            pad: (p, p),
            global: false,
            ceil: true,
        }
    }

    /// Global pooling (whole spatial plane per channel).
    pub fn global(kind: PoolKind) -> Self {
        PoolParams {
            kind,
            kernel: (0, 0),
            stride: (1, 1),
            pad: (0, 0),
            global: true,
            ceil: false,
        }
    }

    /// Returns a copy using floor-mode output rounding (PyTorch semantics).
    pub fn with_floor(mut self) -> Self {
        self.ceil = false;
        self
    }
}

/// Parameters of a fully-connected (inner-product) layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FcParams {
    /// Number of output features.
    pub out_features: usize,
    /// Whether a bias is added.
    pub bias: bool,
    /// Fraction of non-zero weights (1.0 = dense).
    pub weight_density: f32,
}

impl FcParams {
    /// Dense FC layer with bias.
    pub fn new(out_features: usize) -> Self {
        FcParams {
            out_features,
            bias: true,
            weight_density: 1.0,
        }
    }

    /// Returns a copy with the given weight density (for the Sparse library).
    pub fn with_density(mut self, density: f32) -> Self {
        self.weight_density = density;
        self
    }
}

/// Parameters of a local response normalization layer (AlexNet/GoogLeNet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrnParams {
    /// Number of adjacent channels in the normalization window.
    pub size: usize,
    /// Scaling parameter.
    pub alpha: f32,
    /// Exponent.
    pub beta: f32,
    /// Additive constant.
    pub k: f32,
}

impl Default for LrnParams {
    fn default() -> Self {
        LrnParams {
            size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        }
    }
}

/// The operator computed by a layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Network input placeholder (shape given at construction).
    Input,
    /// Standard 2-D convolution.
    Conv(ConvParams),
    /// Depth-wise 2-D convolution (one filter per input channel,
    /// multiplier 1) — the MobileNet workhorse with its own optimized ArmCL
    /// primitive in the paper.
    DepthwiseConv(ConvParams),
    /// Max/average pooling.
    Pool(PoolParams),
    /// Rectified linear activation.
    Relu,
    /// Batch normalization folded to scale+shift at inference time.
    BatchNorm,
    /// Local response normalization.
    Lrn(LrnParams),
    /// Fully-connected layer.
    Fc(FcParams),
    /// Softmax over channels.
    Softmax,
    /// Channel-wise concatenation of 2+ inputs (inception modules).
    Concat,
    /// Element-wise addition of exactly 2 inputs (residual blocks).
    Add,
}

/// Layout-free discriminant of [`LayerKind`], used in the QS-DNN state tuple
/// ("Layer type" row of the paper's Table I) and by library capability
/// predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerTag {
    /// See [`LayerKind::Input`].
    Input,
    /// See [`LayerKind::Conv`].
    Conv,
    /// See [`LayerKind::DepthwiseConv`].
    DepthwiseConv,
    /// See [`LayerKind::Pool`].
    Pool,
    /// See [`LayerKind::Relu`].
    Relu,
    /// See [`LayerKind::BatchNorm`].
    BatchNorm,
    /// See [`LayerKind::Lrn`].
    Lrn,
    /// See [`LayerKind::Fc`].
    Fc,
    /// See [`LayerKind::Softmax`].
    Softmax,
    /// See [`LayerKind::Concat`].
    Concat,
    /// See [`LayerKind::Add`].
    Add,
}

impl LayerTag {
    /// Short lowercase name (stable across versions; used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            LayerTag::Input => "input",
            LayerTag::Conv => "conv",
            LayerTag::DepthwiseConv => "dwconv",
            LayerTag::Pool => "pool",
            LayerTag::Relu => "relu",
            LayerTag::BatchNorm => "bnorm",
            LayerTag::Lrn => "lrn",
            LayerTag::Fc => "fc",
            LayerTag::Softmax => "softmax",
            LayerTag::Concat => "concat",
            LayerTag::Add => "add",
        }
    }
}

impl std::fmt::Display for LayerTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named layer: the unit the QS-DNN agent assigns a primitive to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerDesc {
    /// Human-readable unique name (e.g. `"conv2_1"`).
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
}

impl LayerDesc {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        LayerDesc {
            name: name.into(),
            kind,
        }
    }

    /// The layer's type discriminant.
    pub fn tag(&self) -> LayerTag {
        match &self.kind {
            LayerKind::Input => LayerTag::Input,
            LayerKind::Conv(_) => LayerTag::Conv,
            LayerKind::DepthwiseConv(_) => LayerTag::DepthwiseConv,
            LayerKind::Pool(_) => LayerTag::Pool,
            LayerKind::Relu => LayerTag::Relu,
            LayerKind::BatchNorm => LayerTag::BatchNorm,
            LayerKind::Lrn(_) => LayerTag::Lrn,
            LayerKind::Fc(_) => LayerTag::Fc,
            LayerKind::Softmax => LayerTag::Softmax,
            LayerKind::Concat => LayerTag::Concat,
            LayerKind::Add => LayerTag::Add,
        }
    }

    /// Multiply-accumulate count (or op count for non-MAC layers) for one
    /// forward pass, given resolved input/output shapes.
    ///
    /// This drives the roofline term of the analytical platform model.
    pub fn macs(&self, in_shapes: &[Shape], out_shape: Shape) -> u64 {
        let out_vol = out_shape.volume() as u64;
        match &self.kind {
            LayerKind::Input => 0,
            LayerKind::Conv(p) => {
                let in_c = in_shapes.first().map_or(0, |s| s.c) as u64;
                out_vol * in_c * (p.kernel.0 * p.kernel.1) as u64
            }
            LayerKind::DepthwiseConv(p) => out_vol * (p.kernel.0 * p.kernel.1) as u64,
            LayerKind::Pool(p) => {
                if p.global {
                    in_shapes.first().map_or(0, |s| s.volume() as u64)
                } else {
                    out_vol * (p.kernel.0 * p.kernel.1) as u64
                }
            }
            LayerKind::Relu | LayerKind::BatchNorm => out_vol,
            LayerKind::Lrn(p) => out_vol * p.size as u64,
            LayerKind::Fc(p) => {
                let in_vol = in_shapes.first().map_or(0, |s| s.volume() / s.n.max(1)) as u64;
                in_vol * p.out_features as u64 * out_shape.n as u64
            }
            LayerKind::Softmax => 3 * out_vol,
            LayerKind::Concat => out_vol,
            LayerKind::Add => out_vol,
        }
    }

    /// Number of learned parameters (weights + biases).
    pub fn param_count(&self, in_shapes: &[Shape]) -> u64 {
        match &self.kind {
            LayerKind::Conv(p) => {
                let in_c = in_shapes.first().map_or(0, |s| s.c) as u64;
                let w = p.out_channels as u64 * in_c * (p.kernel.0 * p.kernel.1) as u64;
                w + if p.bias { p.out_channels as u64 } else { 0 }
            }
            LayerKind::DepthwiseConv(p) => {
                let in_c = in_shapes.first().map_or(0, |s| s.c) as u64;
                let w = in_c * (p.kernel.0 * p.kernel.1) as u64;
                w + if p.bias { in_c } else { 0 }
            }
            LayerKind::Fc(p) => {
                let in_vol = in_shapes.first().map_or(0, |s| s.volume() / s.n.max(1)) as u64;
                let w = in_vol * p.out_features as u64;
                w + if p.bias { p.out_features as u64 } else { 0 }
            }
            LayerKind::BatchNorm => in_shapes.first().map_or(0, |s| 2 * s.c as u64),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_square_builder() {
        let p = ConvParams::square(64, 3, 1, 1);
        assert_eq!(p.kernel, (3, 3));
        assert_eq!(p.stride, (1, 1));
        assert_eq!(p.pad, (1, 1));
        assert_eq!(p.weight_density, 1.0);
        assert_eq!(p.with_density(0.25).weight_density, 0.25);
    }

    #[test]
    fn tags_match_kinds() {
        assert_eq!(LayerDesc::new("x", LayerKind::Relu).tag(), LayerTag::Relu);
        assert_eq!(
            LayerDesc::new("c", LayerKind::Conv(ConvParams::square(8, 3, 1, 1))).tag(),
            LayerTag::Conv
        );
        assert_eq!(
            LayerDesc::new(
                "d",
                LayerKind::DepthwiseConv(ConvParams::square(8, 3, 1, 1))
            )
            .tag(),
            LayerTag::DepthwiseConv
        );
    }

    #[test]
    fn conv_macs() {
        // 3x3 conv, 2 in channels, out 4x4x4 => 64 * 2 * 9 = 1152 MACs.
        let d = LayerDesc::new("c", LayerKind::Conv(ConvParams::square(4, 3, 1, 1)));
        let macs = d.macs(&[Shape::new(1, 2, 4, 4)], Shape::new(1, 4, 4, 4));
        assert_eq!(macs, 64 * 2 * 9);
    }

    #[test]
    fn depthwise_macs_independent_of_channels_count_product() {
        let d = LayerDesc::new(
            "d",
            LayerKind::DepthwiseConv(ConvParams::square(8, 3, 1, 1)),
        );
        let macs = d.macs(&[Shape::new(1, 8, 4, 4)], Shape::new(1, 8, 4, 4));
        assert_eq!(macs, 8 * 16 * 9);
    }

    #[test]
    fn fc_params_and_macs() {
        let d = LayerDesc::new("fc", LayerKind::Fc(FcParams::new(10)));
        let in_shape = Shape::new(1, 50, 4, 4); // 800 inputs
        assert_eq!(d.macs(&[in_shape], Shape::vector(1, 10)), 8000);
        assert_eq!(d.param_count(&[in_shape]), 8000 + 10);
    }

    #[test]
    fn global_pool_macs_cover_input() {
        let d = LayerDesc::new("p", LayerKind::Pool(PoolParams::global(PoolKind::Avg)));
        let macs = d.macs(&[Shape::new(1, 32, 7, 7)], Shape::new(1, 32, 1, 1));
        assert_eq!(macs, 32 * 49);
    }

    #[test]
    fn lrn_default_matches_alexnet() {
        let p = LrnParams::default();
        assert_eq!(p.size, 5);
        assert!(p.beta > 0.0);
    }

    #[test]
    fn tag_names_are_stable() {
        assert_eq!(LayerTag::DepthwiseConv.name(), "dwconv");
        assert_eq!(LayerTag::Softmax.to_string(), "softmax");
    }
}
