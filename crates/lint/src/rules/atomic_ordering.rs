//! **atomic-ordering** — orderings must be deliberate, not incidental.
//! Two checks, per module (≈ per file):
//!
//! 1. Every atomic receiver must use a *coherent* ordering scheme across
//!    all its load/store/RMW sites: either one ordering everywhere
//!    (`Relaxed` counters, `SeqCst` flags), or the classic handoff
//!    pairing (`Acquire` loads, `Release` stores, `AcqRel` RMWs). A
//!    receiver mixing, say, `Relaxed` and `SeqCst` is either a perf bug
//!    the <5% obs-overhead bench won't localize or a synchronization bug.
//! 2. Every `SeqCst` site needs an adjacent `// SeqCst:` comment
//!    justifying the total order — accidental `SeqCst` is the common way
//!    hot counters regress.
//!
//! `#[cfg(test)]` code is exempt.

use crate::lexer::{TokKind, Token};
use crate::{Finding, SourceFile};

const RULE: &str = "atomic-ordering";

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const ATOMIC_METHODS: [&str; 13] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

struct Site {
    receiver: String,
    method: String,
    ordering: String,
    line: u32,
}

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.lexed.tokens;
    let mut sites: Vec<Site> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if file.in_test(i) || tok.text != "Ordering" {
            continue;
        }
        let is_path = tokens
            .get(i + 1)
            .zip(tokens.get(i + 2))
            .is_some_and(|(a, b)| a.text == ":" && b.text == ":");
        if !is_path {
            continue;
        }
        let Some(ord) = tokens
            .get(i + 3)
            .filter(|t| ORDERINGS.contains(&t.text.as_str()))
        else {
            continue;
        };
        let Some((receiver, method)) = enclosing_atomic_call(tokens, i) else {
            continue;
        };
        if ord.text == "SeqCst"
            && !file.adjacent_comment(tok.line, "SeqCst:")
            && !file.waived(RULE, tok.line)
        {
            out.push(file.finding(
                tok.line,
                RULE,
                format!(
                    "`SeqCst` on `{receiver}.{method}` without a `// SeqCst:` justification \
                     comment"
                ),
            ));
        }
        sites.push(Site {
            receiver,
            method,
            ordering: ord.text.clone(),
            line: tok.line,
        });
    }
    check_coherence(file, &sites, out);
}

/// Walks back from the `Ordering` token to the call it is an argument of:
/// the nearest unmatched `(` whose preceding token is an atomic method
/// ident, with the receiver ident before the `.` before that.
fn enclosing_atomic_call(tokens: &[Token], ord_idx: usize) -> Option<(String, String)> {
    let mut depth = 0i64;
    let mut j = ord_idx;
    while j > 0 {
        j -= 1;
        match tokens[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                if depth == 0 {
                    if tokens[j].text != "(" {
                        return None;
                    }
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    let method = tokens.get(j.checked_sub(1)?)?;
    if method.kind != TokKind::Ident || !ATOMIC_METHODS.contains(&method.text.as_str()) {
        return None;
    }
    let dot = tokens.get(j.checked_sub(2)?)?;
    if dot.text != "." {
        return None;
    }
    let receiver = tokens.get(j.checked_sub(3)?)?;
    if receiver.kind != TokKind::Ident {
        return None;
    }
    Some((receiver.text.clone(), method.text.clone()))
}

/// A receiver's sites are coherent when they all share one ordering, or
/// follow the Acquire-load / Release-store / AcqRel-RMW handoff pairing.
fn check_coherence(file: &SourceFile, sites: &[Site], out: &mut Vec<Finding>) {
    let mut receivers: Vec<&str> = sites.iter().map(|s| s.receiver.as_str()).collect();
    receivers.sort_unstable();
    receivers.dedup();
    for recv in receivers {
        let group: Vec<&Site> = sites.iter().filter(|s| s.receiver == recv).collect();
        let uniform = group.iter().all(|s| s.ordering == group[0].ordering);
        if uniform || is_handoff_pairing(&group) {
            continue;
        }
        let mut orderings: Vec<String> = group
            .iter()
            .map(|s| format!("{} at line {}", s.ordering, s.line))
            .collect();
        orderings.sort();
        let Some(first) = group.iter().min_by_key(|s| s.line) else {
            continue;
        };
        if file.waived(RULE, first.line) {
            continue;
        }
        out.push(file.finding(
            first.line,
            RULE,
            format!(
                "atomic `{recv}` mixes orderings in this module ({}); pick one scheme",
                orderings.join(", ")
            ),
        ));
    }
}

fn is_handoff_pairing(group: &[&Site]) -> bool {
    group.iter().all(|s| match s.method.as_str() {
        "load" => s.ordering == "Acquire",
        "store" => s.ordering == "Release",
        _ => s.ordering == "AcqRel",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn uniform_relaxed_counter_is_fine() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n    c.load(Ordering::Relaxed);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn acquire_release_handoff_is_fine() {
        let src = "fn f(flag: &AtomicBool) {\n    flag.store(true, Ordering::Release);\n    flag.load(Ordering::Acquire);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn mixed_orderings_are_flagged_once_per_receiver() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n    c.load(Ordering::Acquire);\n}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`c`"));
    }

    #[test]
    fn seqcst_needs_a_justification_comment() {
        let bad = "fn f(s: &AtomicBool) { s.store(true, Ordering::SeqCst); }\n";
        let out = run(bad);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("SeqCst"));
        let good = "fn f(s: &AtomicBool) {\n    // SeqCst: shutdown must totally order against in-flight work\n    s.store(true, Ordering::SeqCst);\n}\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn distinct_receivers_do_not_interfere() {
        let src = "fn f(a: &AtomicU64, b: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n    // SeqCst: cross-thread epoch fence\n    b.load(Ordering::SeqCst);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(s: &AtomicBool) { s.store(true, Ordering::SeqCst); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn bare_ordering_import_is_not_a_site() {
        assert!(run("use std::sync::atomic::Ordering;\n").is_empty());
    }
}
