//! **unsafe-audit** — every `unsafe` block, fn, or impl must carry a
//! `// SAFETY:` comment adjacent to it (on the preceding line, the same
//! line, or in a comment run ending directly above). Applies to every
//! workspace file, tests included: the FFI sites in the serve integration
//! tests manipulate rlimits and raw sockets and deserve the same audit
//! trail as the reactor itself.

use crate::{Finding, SourceFile};

const RULE: &str = "unsafe-audit";

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for tok in &file.lexed.tokens {
        if tok.text != "unsafe" {
            continue;
        }
        if file.adjacent_comment(tok.line, "SAFETY:") {
            continue;
        }
        if file.waived(RULE, tok.line) {
            continue;
        }
        out.push(file.finding(
            tok.line,
            RULE,
            "unsafe without a `// SAFETY:` comment explaining why the contract holds".to_owned(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("x.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_bare_unsafe_block() {
        let out = run("fn f() { unsafe { work() } }\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn safety_comment_above_or_trailing_passes() {
        assert!(run("// SAFETY: fd is owned\nunsafe { close(fd) }\n").is_empty());
        assert!(run("unsafe { close(fd) } // SAFETY: fd is owned\n").is_empty());
        assert!(run("// blah\n// SAFETY: spans a run\nunsafe fn f() {}\n").is_empty());
    }

    #[test]
    fn unrelated_comment_does_not_pass() {
        assert_eq!(run("// closes the fd\nunsafe { close(fd) }\n").len(), 1);
    }

    #[test]
    fn unsafe_inside_string_is_invisible() {
        assert!(run("let s = \"unsafe { }\";\n").is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        assert!(run("// LINT-ALLOW(unsafe-audit): vendored shim\nunsafe { x() }\n").is_empty());
    }
}
