//! **panic-path** — serve's request-handling modules must not panic: a
//! panic on the reactor or a worker thread kills every connection it was
//! serving (the exact shape of the PR 3 handler bug). Flags `.unwrap()`,
//! `.expect()`, the `panic!` macro family, and indexing/slicing in
//! expression position. `#[cfg(test)]` code is exempt; fixed
//! integer-literal indices (`pipe_fds[0]`) and full-range slices
//! (`&buf[..]`) cannot panic and are allowed.

use crate::lexer::{TokKind, Token};
use crate::{Finding, SourceFile};

const RULE: &str = "panic-path";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without the bracket being an
/// index expression (`return [..]`, `match [..]`, `in [..]`, ...).
const NON_EXPR_KEYWORDS: [&str; 24] = [
    "let", "mut", "in", "return", "match", "if", "else", "loop", "while", "for", "break",
    "continue", "move", "ref", "as", "box", "where", "impl", "fn", "pub", "use", "static", "const",
    "type",
];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        let message = match classify(tokens, i, tok) {
            Some(m) => m,
            None => continue,
        };
        if file.waived(RULE, tok.line) {
            continue;
        }
        out.push(file.finding(tok.line, RULE, message));
    }
}

fn classify(tokens: &[Token], i: usize, tok: &Token) -> Option<String> {
    match tok.kind {
        TokKind::Ident => {
            let after_dot = i > 0 && tokens[i - 1].text == ".";
            let before_paren = tokens.get(i + 1).is_some_and(|t| t.text == "(");
            if after_dot && before_paren && (tok.text == "unwrap" || tok.text == "expect") {
                return Some(format!(
                    "`.{}()` in the request path; propagate ServeError instead",
                    tok.text
                ));
            }
            let before_bang = tokens.get(i + 1).is_some_and(|t| t.text == "!");
            if before_bang && PANIC_MACROS.contains(&tok.text.as_str()) {
                return Some(format!(
                    "`{}!` in the request path; return an error instead of aborting the thread",
                    tok.text
                ));
            }
            None
        }
        TokKind::Punct if tok.text == "[" => {
            if !prev_is_expression(tokens, i) {
                return None;
            }
            if index_cannot_panic(tokens, i) {
                return None;
            }
            Some(
                "indexing/slicing can panic in the request path; use `.get()` and handle `None`"
                    .to_owned(),
            )
        }
        _ => None,
    }
}

/// True when the token before `[` ends an expression, making the bracket
/// an index/slice operation rather than an array type, pattern, or
/// attribute.
fn prev_is_expression(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !NON_EXPR_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    }
}

/// True for index expressions that cannot panic by construction: a single
/// integer literal (`fds[0]` on a fixed-size array) or the full-range
/// slice (`&buf[..]`).
fn index_cannot_panic(tokens: &[Token], open: usize) -> bool {
    let lit = tokens.get(open + 1).zip(tokens.get(open + 2));
    if let Some((a, b)) = lit {
        if a.kind == TokKind::Int && b.text == "]" {
            return true;
        }
        if a.text == "." && b.text == "." && tokens.get(open + 3).is_some_and(|t| t.text == "]") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("x.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let out = run("fn f() { a.unwrap(); b.expect(\"m\"); panic!(\"x\"); unreachable!(); }\n");
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run("fn f() { a.unwrap_or_default(); b.unwrap_or_else(|| 0); }\n").is_empty());
    }

    #[test]
    fn flags_variable_indexing_and_range_slicing() {
        assert_eq!(run("fn f() { let x = arr[i]; }\n").len(), 1);
        assert_eq!(run("fn f() { let s = &buf[..n]; }\n").len(), 1);
        assert_eq!(run("fn f() { let s = &buf[a..b]; }\n").len(), 1);
    }

    #[test]
    fn literal_index_and_full_range_are_fine() {
        assert!(run("fn f() { let x = fds[0]; let s = &buf[..]; }\n").is_empty());
    }

    #[test]
    fn types_patterns_and_attrs_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\n\
                   fn f(x: [u8; 2]) -> [u8; 2] { let v = vec![1, 2]; x }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); arr[i]; }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        let src = "fn f() {\n    // LINT-ALLOW(panic-path): startup only, before any connection\n    a.unwrap();\n}\n";
        assert!(run(src).is_empty());
    }
}
