//! **wire-compat** — wire structs in `protocol.rs` must stay
//! backward-compatible: every field on a `#[derive(Deserialize)]` struct
//! that is not `#[serde(default)]` (or `#[serde(skip)]`, or `Option`)
//! makes the server reject frames from older clients that omit it — the
//! exact failure PR 5's `accept_errors` field shipped with. The baseline
//! for this rule is empty: every optional field carries `#[serde(default)]`
//! and the handful of genuinely-mandatory fields (correlation ids, the
//! request/reply payload itself, enums with no meaningful default) carry an
//! inline `LINT-ALLOW(wire-compat)` waiver stating *why* they are
//! mandatory. Adding a new mandatory field without such a justification
//! trips CI.

use crate::lexer::Token;
use crate::{Finding, SourceFile};

const RULE: &str = "wire-compat";

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.lexed.tokens;
    let mut pending_deserialize = false;
    let mut i = 0;
    while i < tokens.len() {
        if crate::is_attr_start(tokens, i) {
            let end = attr_end(tokens, i);
            if attr_contains(tokens, i, end, "derive")
                && attr_contains(tokens, i, end, "Deserialize")
            {
                pending_deserialize = true;
            }
            i = end;
            continue;
        }
        let text = tokens[i].text.as_str();
        if text == "struct" {
            let deserialize = pending_deserialize;
            pending_deserialize = false;
            let name = tokens
                .get(i + 1)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            // Advance to the body: `{` for named fields, `;`/`(` for
            // unit/tuple structs (which carry no field names to check).
            let mut k = i + 2;
            while k < tokens.len() && !matches!(tokens[k].text.as_str(), "{" | ";" | "(") {
                k += 1;
            }
            if k < tokens.len() && tokens[k].text == "{" && deserialize {
                k = check_fields(file, tokens, k, &name, out);
            }
            i = k + 1;
            continue;
        }
        // Only visibility tokens may sit between a derive and its struct;
        // anything else (another item kind, an expression) consumes the
        // pending derive.
        if !matches!(
            text,
            "pub" | "(" | ")" | "crate" | "super" | "self" | "in" | ":"
        ) {
            pending_deserialize = false;
        }
        i += 1;
    }
}

/// Checks the named fields of the struct body opening at `open` (`{`).
/// Returns the index of the matching `}`.
fn check_fields(
    file: &SourceFile,
    tokens: &[Token],
    open: usize,
    struct_name: &str,
    out: &mut Vec<Finding>,
) -> usize {
    let mut k = open + 1;
    loop {
        // Leading attributes on the field.
        let mut has_serde_escape = false;
        while crate::is_attr_start(tokens, k) {
            let end = attr_end(tokens, k);
            if attr_contains(tokens, k, end, "serde")
                && (attr_contains(tokens, k, end, "default")
                    || attr_contains(tokens, k, end, "skip"))
            {
                has_serde_escape = true;
            }
            k = end;
        }
        let Some(tok) = tokens.get(k) else {
            return k;
        };
        if tok.text == "}" {
            return k;
        }
        // Visibility.
        if tok.text == "pub" {
            k += 1;
            if tokens.get(k).is_some_and(|t| t.text == "(") {
                while k < tokens.len() && tokens[k].text != ")" {
                    k += 1;
                }
                k += 1;
            }
        }
        let Some(field) = tokens.get(k) else {
            return k;
        };
        let field_name = field.text.clone();
        let field_line = field.line;
        k += 1; // past name
        if tokens.get(k).is_some_and(|t| t.text == ":") {
            k += 1;
        }
        let optional = tokens.get(k).is_some_and(|t| t.text == "Option");
        // Skip the type: to the `,` or closing `}` at zero nesting.
        let mut angle = 0i64;
        let mut group = 0i64;
        while let Some(t) = tokens.get(k) {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" | "[" | "{" => group += 1,
                ")" | "]" => group -= 1,
                "}" if group == 0 => break,
                "}" => group -= 1,
                "," if angle <= 0 && group == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if !has_serde_escape && !optional && !file.waived(RULE, field_line) {
            out.push(file.finding(
                field_line,
                RULE,
                format!(
                    "field `{field_name}` of wire struct `{struct_name}` is neither \
                     `#[serde(default)]` nor `Option`; peers omitting it will fail to parse"
                ),
            ));
        }
    }
}

fn attr_end(tokens: &[Token], i: usize) -> usize {
    crate::scan_attr(tokens, i).0
}

fn attr_contains(tokens: &[Token], start: usize, end: usize, ident: &str) -> bool {
    tokens[start..end.min(tokens.len())]
        .iter()
        .any(|t| t.text == ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/serve/src/protocol.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_mandatory_field_on_deserialize_struct() {
        let src = "#[derive(Debug, Serialize, Deserialize)]\n\
                   pub struct Req {\n    pub id: u64,\n    #[serde(default)]\n    pub trace: bool,\n    pub opt: Option<u32>,\n}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("`id`"));
        assert!(out[0].message.contains("`Req`"));
    }

    #[test]
    fn structs_without_deserialize_are_ignored() {
        let src = "#[derive(Debug, Clone)]\npub struct Plain { pub id: u64 }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn generic_types_with_commas_do_not_split_fields() {
        let src = "#[derive(Deserialize)]\n\
                   pub struct M {\n    #[serde(default)]\n    pub map: HashMap<String, Vec<u32>>,\n    #[serde(default)]\n    pub arr: [u8; 4],\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn derive_does_not_leak_past_other_items() {
        let src =
            "#[derive(Deserialize)]\npub struct A {\n    #[serde(default)]\n    pub x: u32,\n}\n\
                   pub struct B { pub y: u32 }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped() {
        let src = "#[derive(Deserialize)]\npub struct T(pub u32);\n\
                   #[derive(Deserialize)]\npub struct U;\n";
        assert!(run(src).is_empty());
    }
}
