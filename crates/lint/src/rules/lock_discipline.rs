//! **lock-discipline** — a `MutexGuard` bound to a name and still live
//! across a blocking call (`recv`, `join`, a second `lock`, socket
//! `write`/`read`/`flush`, `accept`) stalls every other thread contending
//! for that mutex for the duration of the block — or deadlocks outright
//! when the blocked-on party needs the same lock. The rule finds `let
//! [mut] name = ...lock()...;` bindings and flags blocking calls between
//! the binding and the end of its enclosing block (or an explicit
//! `drop(name)`). Deliberate designs (serve's per-connection writer lock
//! serializes writes *on purpose*) carry `// LINT-ALLOW(lock-discipline)`
//! waivers at the call site. `Condvar::wait` is not blocking *with* the
//! lock — it releases the guard — so it is not in the set.

use crate::lexer::{TokKind, Token};
use crate::{Finding, SourceFile};

const RULE: &str = "lock-discipline";

const BLOCKING_METHODS: [&str; 11] = [
    "recv",
    "recv_timeout",
    "join",
    "lock",
    "write",
    "write_all",
    "flush",
    "read",
    "read_exact",
    "read_to_end",
    "accept",
];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.lexed.tokens;
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "let" || file.in_test(i) {
            i += 1;
            continue;
        }
        let Some(binding) = parse_guard_binding(tokens, i) else {
            i += 1;
            continue;
        };
        scan_live_range(file, tokens, &binding, out);
        i = binding.stmt_end + 1;
    }
}

struct GuardBinding {
    name: String,
    line: u32,
    /// Index of the statement's terminating `;`.
    stmt_end: usize,
}

/// Matches `let [mut] name = <chain ending in .lock()>;` starting at the
/// `let` token. Returns `None` for any other `let` — including
/// initializers that merely *contain* a `.lock()` whose guard dies inside
/// the expression (`std::mem::take(&mut *m.lock().unwrap())`, a block
/// that returns a copied value, a spawned closure): the binding is only a
/// guard when the chain *ends* at `.lock()`, allowing the usual
/// poison-recovery adapters (`unwrap`, `expect`, `unwrap_or_else`,
/// `map_err`, `?`) after it.
fn parse_guard_binding(tokens: &[Token], let_idx: usize) -> Option<GuardBinding> {
    let mut k = let_idx + 1;
    if tokens.get(k).is_some_and(|t| t.text == "mut") {
        k += 1;
    }
    let name_tok = tokens.get(k)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    if tokens.get(k + 1).map(|t| t.text.as_str()) != Some("=") {
        return None;
    }
    // Scan the initializer to its depth-0 `;`, remembering the last
    // `.lock(` call in it.
    let mut depth = 0i64;
    let mut last_lock = None;
    let mut j = k + 2;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => break,
            "lock"
                if tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.text == ".")
                    && tokens.get(j + 1).is_some_and(|n| n.text == "(") =>
            {
                last_lock = Some(j);
            }
            _ => {}
        }
        j += 1;
    }
    let lock_idx = last_lock?;
    if j >= tokens.len() || !chain_ends_at_lock(tokens, lock_idx, j) {
        return None;
    }
    Some(GuardBinding {
        name: name_tok.text.clone(),
        line: name_tok.line,
        stmt_end: j,
    })
}

/// True when everything between `.lock(`'s closing paren and the
/// statement's `;` at `stmt_end` is poison-recovery plumbing, i.e. the
/// guard is what the `let` binds.
fn chain_ends_at_lock(tokens: &[Token], lock_idx: usize, stmt_end: usize) -> bool {
    // Find the paren that closes the `lock(` call.
    let mut depth = 0i64;
    let mut pos = lock_idx + 1;
    while pos < stmt_end {
        match tokens[pos].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    pos += 1;
                    break;
                }
            }
            _ => {}
        }
        pos += 1;
    }
    const ADAPTERS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "map_err"];
    while pos < stmt_end {
        if tokens[pos].text == "?" {
            pos += 1;
            continue;
        }
        let adapter = tokens[pos].text == "."
            && tokens
                .get(pos + 1)
                .is_some_and(|t| ADAPTERS.contains(&t.text.as_str()))
            && tokens.get(pos + 2).is_some_and(|t| t.text == "(");
        if !adapter {
            return false;
        }
        // Skip to the adapter call's closing paren.
        let mut d = 0i64;
        pos += 2;
        while pos < stmt_end {
            match tokens[pos].text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => {
                    d -= 1;
                    if d == 0 {
                        pos += 1;
                        break;
                    }
                }
                _ => {}
            }
            pos += 1;
        }
    }
    true
}

/// Flags blocking calls between the binding and the end of its enclosing
/// block or `drop(name)`.
fn scan_live_range(
    file: &SourceFile,
    tokens: &[Token],
    binding: &GuardBinding,
    out: &mut Vec<Finding>,
) {
    let mut depth = 0i64;
    let mut j = binding.stmt_end + 1;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return; // enclosing block ended; guard dropped
                }
            }
            "drop"
                if tokens.get(j + 1).is_some_and(|a| a.text == "(")
                    && tokens.get(j + 2).is_some_and(|b| b.text == binding.name)
                    && tokens.get(j + 3).is_some_and(|c| c.text == ")") =>
            {
                return; // explicit early drop
            }
            m if BLOCKING_METHODS.contains(&m) && t.kind == TokKind::Ident => {
                let is_call = tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.text == ".")
                    && tokens.get(j + 1).is_some_and(|n| n.text == "(");
                if is_call && !file.in_test(j) && !file.waived(RULE, t.line) {
                    out.push(file.finding(
                        t.line,
                        RULE,
                        format!(
                            "guard `{}` (bound at line {}) is held across blocking `.{}()`; \
                             drop it first or waive with a rationale",
                            binding.name, binding.line, m
                        ),
                    ));
                }
            }
            _ => {}
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn guard_across_recv_is_flagged() {
        let src = "fn f() {\n    let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n    let job = rx.recv();\n    g.push(job);\n}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`g`"));
        assert!(out[0].message.contains("recv"));
    }

    #[test]
    fn second_lock_while_holding_first_is_flagged() {
        let src = "fn f() {\n    let a = m1.lock().unwrap_or_else(PoisonError::into_inner);\n    let b = m2.lock().unwrap_or_else(PoisonError::into_inner);\n}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("lock"));
    }

    #[test]
    fn scope_end_releases_the_guard() {
        let src = "fn f() {\n    {\n        let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n        g.push(1);\n    }\n    let job = rx.recv();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f() {\n    let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n    drop(g);\n    let job = rx.recv();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn transient_lock_without_binding_is_fine() {
        let src = "fn f() {\n    m.lock().unwrap_or_else(PoisonError::into_inner).push(1);\n    let job = rx.recv();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn blocking_call_inside_initializer_is_not_a_hold() {
        let src = "fn f() {\n    let job = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn detached_results_are_not_guards() {
        // The guard dies inside the initializer; the bound value is data.
        let take = "fn f() {\n    let v = std::mem::take(&mut *m.lock().unwrap_or_else(PoisonError::into_inner));\n    for h in v { h.join(); }\n}\n";
        assert!(run(take).is_empty());
        let block = "fn f() {\n    let depth = {\n        let mut n = m.lock().unwrap_or_else(PoisonError::into_inner);\n        *n += 1;\n        *n\n    };\n    rx.recv();\n}\n";
        assert!(run(block).is_empty());
    }

    #[test]
    fn try_operator_chain_is_still_a_guard() {
        let src = "fn f() -> Result<(), E> {\n    let g = m.lock().map_err(|_| E)?;\n    rx.recv();\n    Ok(())\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn waiver_at_call_site_suppresses() {
        let src = "fn f() {\n    let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n    // LINT-ALLOW(lock-discipline): writes are serialized by design\n    stream.write_all(buf);\n}\n";
        assert!(run(src).is_empty());
    }
}
