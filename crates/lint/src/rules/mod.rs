//! The rule set. Each rule is a function from a [`SourceFile`] to
//! findings; [`run_all`] applies every rule to every file it is scoped to
//! and returns the findings sorted for deterministic output.

use crate::{Finding, SourceFile};

mod atomic_ordering;
mod lock_discipline;
mod panic_path;
mod unsafe_audit;
mod wire_compat;

/// Every rule name, in reporting order. `--rule` validates against this.
pub const RULE_NAMES: [&str; 5] = [
    "unsafe-audit",
    "panic-path",
    "wire-compat",
    "atomic-ordering",
    "lock-discipline",
];

/// Runs every rule (or just `filter`, when given) over `files` and
/// returns findings sorted by (file, line, rule).
pub fn run_all(files: &[SourceFile], filter: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let wants = |rule: &str| filter.is_none_or(|f| f == rule);
    for file in files {
        if wants("unsafe-audit") {
            unsafe_audit::check(file, &mut findings);
        }
        if wants("panic-path") && file.is_request_path() {
            panic_path::check(file, &mut findings);
        }
        if wants("wire-compat") && file.is_protocol() {
            wire_compat::check(file, &mut findings);
        }
        if wants("atomic-ordering") && file.is_src() {
            atomic_ordering::check(file, &mut findings);
        }
        if wants("lock-discipline") && file.is_src() {
            lock_discipline::check(file, &mut findings);
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}
