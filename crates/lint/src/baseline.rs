//! The committed baseline: grandfathered findings CI tolerates.
//!
//! Entries are keyed by `(file, rule, normalized snippet)` with a count —
//! deliberately *not* by line number, so edits elsewhere in a file don't
//! invalidate the baseline. Comparing against it yields two failure
//! classes: **new** findings (more occurrences of a key than the baseline
//! allows) and **stale** entries (fewer — the code was fixed, so the entry
//! must be removed to keep the ratchet tight). Both fail CI;
//! `--update-baseline` rewrites the file from the current tree.

use std::collections::BTreeMap;

use crate::Finding;

/// The header written at the top of every generated baseline file.
const HEADER: &str = "\
# qsdnn-lint baseline: grandfathered findings, keyed by (file, rule, snippet).
# Regenerate with: cargo run -p qsdnn-lint -- --update-baseline
# Format: count<TAB>file<TAB>rule<TAB>normalized source line
";

type Key = (String, String, String);

/// Parses baseline text into a count per key. Unparseable lines are
/// ignored (comments, blanks).
pub fn parse(text: &str) -> BTreeMap<Key, usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (Some(count), Some(file), Some(rule), Some(snippet)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(count) = count.trim().parse::<usize>() else {
            continue;
        };
        *map.entry((file.to_owned(), rule.to_owned(), snippet.to_owned()))
            .or_insert(0) += count;
    }
    map
}

/// Renders findings as baseline text, sorted and counted by key.
pub fn render(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<Key, usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.file.clone(), f.rule.to_owned(), f.snippet.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(HEADER);
    for ((file, rule, snippet), count) in counts {
        out.push_str(&format!("{count}\t{file}\t{rule}\t{snippet}\n"));
    }
    out
}

/// The verdict of comparing current findings against the baseline.
pub struct Diff {
    /// Findings not covered by the baseline — fail.
    pub new: Vec<Finding>,
    /// Baseline keys with more grandfathered occurrences than the tree
    /// now has (rendered `file: rule: snippet`) — fixed code whose entry
    /// must be dropped; also fail, to keep the ratchet moving.
    pub stale: Vec<String>,
}

/// Compares `findings` against `baseline` counts.
pub fn diff(findings: &[Finding], baseline: &BTreeMap<Key, usize>) -> Diff {
    let mut remaining = baseline.clone();
    let mut new = Vec::new();
    for f in findings {
        let key = (f.file.clone(), f.rule.to_owned(), f.snippet.clone());
        match remaining.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => new.push(f.clone()),
        }
    }
    let stale = remaining
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .map(|((file, rule, snippet), n)| format!("{file}: {rule}: {snippet} (x{n})"))
        .collect();
    Diff { new, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &'static str, snippet: &str) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            rule,
            message: String::new(),
            snippet: snippet.to_owned(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let findings = vec![
            finding("a.rs", 3, "panic-path", "x.unwrap();"),
            finding("a.rs", 9, "panic-path", "x.unwrap();"),
            finding("b.rs", 1, "unsafe-audit", "unsafe { y() }"),
        ];
        let text = render(&findings);
        let parsed = parse(&text);
        assert_eq!(
            parsed.get(&("a.rs".into(), "panic-path".into(), "x.unwrap();".into())),
            Some(&2)
        );
        assert_eq!(
            parsed.get(&(
                "b.rs".into(),
                "unsafe-audit".into(),
                "unsafe { y() }".into()
            )),
            Some(&1)
        );
    }

    #[test]
    fn diff_classifies_new_covered_and_stale() {
        let baseline =
            parse("2\ta.rs\tpanic-path\tx.unwrap();\n1\tb.rs\twire-compat\tpub id: u64,\n");
        let findings = vec![
            finding("a.rs", 3, "panic-path", "x.unwrap();"),
            finding("a.rs", 9, "panic-path", "x.unwrap();"),
            finding("c.rs", 5, "panic-path", "y.expect(\"m\");"),
        ];
        let d = diff(&findings, &baseline);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].file, "c.rs");
        assert_eq!(d.stale.len(), 1);
        assert!(d.stale[0].contains("b.rs"));
    }

    #[test]
    fn line_moves_do_not_invalidate_the_baseline() {
        let baseline = parse("1\ta.rs\tpanic-path\tx.unwrap();\n");
        let moved = vec![finding("a.rs", 400, "panic-path", "x.unwrap();")];
        let d = diff(&moved, &baseline);
        assert!(d.new.is_empty());
        assert!(d.stale.is_empty());
    }
}
