//! A hand-rolled Rust lexer, total over arbitrary input.
//!
//! The linter's rules only need a token stream with line numbers plus the
//! comment text the compiler throws away — so this lexer keeps comments as
//! first-class trivia and never fails: unterminated strings and comments
//! run to end of input, unknown bytes become one-character punctuation
//! tokens. What it must get exactly right is *where literals and comments
//! end*, because every rule would otherwise fire on `"unsafe {"` inside a
//! string or `.unwrap()` inside a doc comment. That means: nested block
//! comments, raw strings with arbitrary `#` fences (`r##"…"##`), byte and
//! byte-raw strings, char literals vs lifetimes, and raw identifiers.

/// What a significant (non-trivia) token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// Lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// Integer literal, suffix included.
    Int,
    /// Float literal, suffix included.
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), quotes and
    /// fences included.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Single punctuation character (multi-character operators arrive as
    /// consecutive tokens: `::` is `:`, `:`).
    Punct,
}

/// One significant token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line or block), with `//`/`/*` markers kept in the text.
/// Consecutive `//` lines are merged into one run, so a rule asking "does
/// the comment immediately above line N say SAFETY:" sees the whole run.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment run starts on.
    pub start_line: u32,
    /// 1-based line the comment run ends on.
    pub end_line: u32,
    /// Full text, marker included.
    pub text: String,
}

/// A lexed source file: significant tokens plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment runs in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'a str>,
    pos: usize,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Total: any input produces a
/// token stream, never a panic.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        src: std::marker::PhantomData,
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out);
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out);
            continue;
        }
        if let Some(tok) = lex_raw_or_byte(&mut cur) {
            out.tokens.push(tok);
            continue;
        }
        if c == '"' {
            out.tokens.push(lex_string(&mut cur, String::new()));
            continue;
        }
        if c == '\'' {
            out.tokens.push(lex_char_or_lifetime(&mut cur));
            continue;
        }
        if c.is_ascii_digit() {
            out.tokens.push(lex_number(&mut cur));
            continue;
        }
        if is_ident_start(c) {
            out.tokens.push(lex_ident(&mut cur));
            continue;
        }
        let line = cur.line;
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let start_line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // Merge with a directly preceding `//` run that ended on the previous
    // line, so multi-line comment paragraphs read as one unit — but only
    // when no code token sits on any line of the run (including this
    // one): a trailing comment must stay its own single-line run, or the
    // adjacency rules would let it annotate the line below it.
    let code_since_run_start =
        |run_start: u32, tokens: &[Token]| tokens.last().is_some_and(|t| t.line >= run_start);
    if let Some(prev) = out.comments.last_mut() {
        if prev.end_line + 1 == start_line
            && prev.text.starts_with("//")
            && text.starts_with("//")
            && !code_since_run_start(prev.start_line, &out.tokens)
        {
            prev.text.push('\n');
            prev.text.push_str(&text);
            prev.end_line = start_line;
            return;
        }
    }
    out.comments.push(Comment {
        start_line,
        end_line: start_line,
        text,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed) {
    let start_line = cur.line;
    let mut text = String::new();
    let mut depth = 0usize;
    // Line of the last comment character — NOT `cur.line` after the loop,
    // which sits one line further when the comment's final consumed
    // character is a newline (an unterminated comment at EOF).
    let mut end_line = start_line;
    while let Some(c) = cur.peek() {
        end_line = cur.line;
        if c == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
            continue;
        }
        if c == '*' && cur.peek_at(1) == Some('/') {
            depth = depth.saturating_sub(1);
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            continue;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        start_line,
        end_line,
        text,
    });
}

/// Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`), byte
/// chars (`b'x'`) and raw identifiers (`r#ident`). Returns `None` when the
/// cursor is not on one of these, leaving it untouched.
fn lex_raw_or_byte(cur: &mut Cursor) -> Option<Token> {
    let c = cur.peek()?;
    if c != 'r' && c != 'b' {
        return None;
    }
    let line = cur.line;
    // Count the shape ahead without consuming.
    let mut ahead = 1;
    let mut prefix = String::from(c);
    if c == 'b' && cur.peek_at(1) == Some('r') {
        prefix.push('r');
        ahead = 2;
    }
    // `r#...` — fence hashes, then a quote (raw string) or an identifier
    // start (raw identifier).
    let mut hashes = 0usize;
    while cur.peek_at(ahead + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek_at(ahead + hashes) {
        Some('"') => {
            // Raw (or byte-raw) string: consume prefix + fence + quote.
            for _ in 0..(ahead + hashes + 1) {
                cur.bump();
            }
            let mut text = prefix;
            text.push_str(&"#".repeat(hashes));
            text.push('"');
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '"' {
                    // Check for the closing fence.
                    let mut matched = 0usize;
                    while matched < hashes && cur.peek_at(matched) == Some('#') {
                        matched += 1;
                    }
                    if matched == hashes {
                        for _ in 0..hashes {
                            cur.bump();
                            text.push('#');
                        }
                        break;
                    }
                }
            }
            Some(Token {
                kind: TokKind::Str,
                text,
                line,
            })
        }
        Some('\'') if c == 'b' && hashes == 0 && ahead == 1 => {
            // Byte char b'x'.
            cur.bump(); // b
            let mut text = String::from("b");
            text.push_str(&lex_char_body(cur));
            Some(Token {
                kind: TokKind::Char,
                text,
                line,
            })
        }
        Some(id) if c == 'r' && ahead == 1 && hashes == 1 && is_ident_start(id) => {
            // Raw identifier r#ident.
            cur.bump(); // r
            cur.bump(); // #
            let mut text = String::from("r#");
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            Some(Token {
                kind: TokKind::Ident,
                text,
                line,
            })
        }
        _ => None, // plain identifier starting with r/b; lex_ident handles it
    }
}

/// Consumes a quoted char literal starting at `'`, escapes handled;
/// returns its text (quotes included). The caller decided it *is* a char.
fn lex_char_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q); // opening '
    }
    match cur.peek() {
        Some('\\') => {
            text.push('\\');
            cur.bump();
            if let Some(e) = cur.bump() {
                text.push(e);
                if e == 'u' && cur.peek() == Some('{') {
                    while let Some(ch) = cur.bump() {
                        text.push(ch);
                        if ch == '}' {
                            break;
                        }
                    }
                }
            }
        }
        Some(ch) => {
            text.push(ch);
            cur.bump();
        }
        None => return text,
    }
    if cur.peek() == Some('\'') {
        text.push('\'');
        cur.bump();
    }
    text
}

/// `'` is a char literal or a lifetime. `'a'` is a char, `'a` is a
/// lifetime; `'\n'` is a char; `'static` is a lifetime.
fn lex_char_or_lifetime(cur: &mut Cursor) -> Token {
    let line = cur.line;
    // Escaped → always a char literal.
    if cur.peek_at(1) == Some('\\') {
        return Token {
            kind: TokKind::Char,
            text: lex_char_body(cur),
            line,
        };
    }
    // `'x'` (one char then a closing quote) → char literal. Note the
    // payload char may be multibyte.
    if cur.peek_at(2) == Some('\'') && cur.peek_at(1).is_some_and(|c| c != '\'') {
        return Token {
            kind: TokKind::Char,
            text: lex_char_body(cur),
            line,
        };
    }
    // Otherwise a lifetime (or a stray quote, which becomes a one-char
    // lifetime-ish token — total, never a panic).
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokKind::Lifetime,
        text,
        line,
    }
}

fn lex_string(cur: &mut Cursor, prefix: String) -> Token {
    let line = cur.line;
    let mut text = prefix;
    if let Some(q) = cur.bump() {
        text.push(q); // opening "
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    Token {
        kind: TokKind::Str,
        text,
        line,
    }
}

fn lex_number(cur: &mut Cursor) -> Token {
    let line = cur.line;
    let mut text = String::new();
    let mut float = false;
    // Radix prefix?
    if cur.peek() == Some('0') && matches!(cur.peek_at(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'))
    {
        text.push('0');
        cur.bump();
        if let Some(r) = cur.bump() {
            text.push(r);
        }
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token {
            kind: TokKind::Int,
            text,
            line,
        };
    }
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else if c == '.' && !float && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` is a float; `1..5` is a range and `1.method()` a call.
            float = true;
            text.push('.');
            cur.bump();
        } else if (c == 'e' || c == 'E')
            && cur.peek_at(1).is_some_and(|d| {
                d.is_ascii_digit()
                    || ((d == '+' || d == '-')
                        && cur.peek_at(2).is_some_and(|e| e.is_ascii_digit()))
            })
        {
            float = true;
            text.push(c);
            cur.bump();
            if let Some(s) = cur.peek() {
                if s == '+' || s == '-' {
                    text.push(s);
                    cur.bump();
                }
            }
        } else if c.is_ascii_alphabetic() {
            // Type suffix (u64, f32, usize…).
            if c == 'f' {
                float = true;
            }
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
    }
}

fn lex_ident(cur: &mut Cursor) -> Token {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokKind::Ident,
        text,
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        assert_eq!(
            texts("let x = a.unwrap();"),
            ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]
        );
        assert_eq!(
            texts("0xFF_u32 1_000 1.5e-3 1..2"),
            ["0xFF_u32", "1_000", "1.5e-3", "1", ".", ".", "2"]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex("let s = \"unsafe { .unwrap() }\";");
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.text == "unsafe").count(),
            0
        );
        assert_eq!(lexed.tokens[3].kind, TokKind::Str);
    }

    #[test]
    fn raw_strings_with_fences() {
        let lexed = lex("let s = r##\"a \"# unsafe\"##; next");
        assert_eq!(lexed.tokens[3].kind, TokKind::Str);
        assert_eq!(lexed.tokens[3].text, "r##\"a \"# unsafe\"##");
        assert_eq!(lexed.tokens[5].text, "next");
    }

    #[test]
    fn byte_strings_and_chars() {
        let lexed = lex(r#"b"bytes" b'x' 'y' '\n' 'a"#);
        assert_eq!(lexed.tokens[0].kind, TokKind::Str);
        assert_eq!(lexed.tokens[1].kind, TokKind::Char);
        assert_eq!(lexed.tokens[2].kind, TokKind::Char);
        assert_eq!(lexed.tokens[3].kind, TokKind::Char);
        assert_eq!(lexed.tokens[4].kind, TokKind::Lifetime);
        assert_eq!(lexed.tokens[4].text, "'a");
    }

    #[test]
    fn nested_block_comments_and_runs() {
        let lexed = lex("/* outer /* inner */ still */ x\n// one\n// two\ny");
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("inner"));
        assert_eq!(lexed.comments[1].text, "// one\n// two");
        assert_eq!(lexed.comments[1].start_line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
    }

    #[test]
    fn trailing_comment_does_not_absorb_the_next_standalone_run() {
        let lexed = lex("x(); // trailing\n// standalone\ny");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "// trailing");
        assert_eq!(lexed.comments[1].start_line, 2);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(texts("r#fn r#type normal"), ["r#fn", "r#type", "normal"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let lexed = lex("a\n\"multi\nline\"\nb");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[2].line, 4);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "\"unterminated",
            "/* unterminated",
            "r#\"open",
            "'",
            "\\ \u{7f}\u{0}",
        ] {
            let _ = lex(src);
        }
    }
}
