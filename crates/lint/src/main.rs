//! CLI driver: walk the workspace, run the rules, compare against the
//! committed baseline.
//!
//! Exit codes: `0` clean, `1` new or stale findings, `2` usage/IO error.

use std::path::PathBuf;

use qsdnn_lint::{baseline, collect_files, find_workspace_root, rules};

const USAGE: &str = "\
qsdnn-lint: repo-specific static analysis for the QS-DNN workspace

USAGE:
    cargo run -p qsdnn-lint [--release] -- [OPTIONS]

OPTIONS:
    --root <dir>         workspace root (default: discovered from cwd)
    --baseline <file>    baseline path (default: <root>/lint-baseline.txt)
    --update-baseline    rewrite the baseline from the current tree
    --all                report every finding, ignoring the baseline
    --rule <name>        run a single rule (unsafe-audit, panic-path,
                         wire-compat, atomic-ordering, lock-discipline)
    --help               show this help
";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut all = false;
    let mut rule: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--update-baseline" => update = true,
            "--all" => all = true,
            "--rule" => match args.next() {
                Some(v) if rules::RULE_NAMES.contains(&v.as_str()) => rule = Some(v),
                Some(v) => return usage_error(&format!("unknown rule `{v}`")),
                None => return usage_error("--rule needs a value"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => return usage_error("could not find a workspace root; pass --root"),
    };

    let files = match collect_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "qsdnn-lint: failed to read workspace under {}: {e}",
                root.display()
            );
            return 2;
        }
    };
    let findings = rules::run_all(&files, rule.as_deref());
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    if update {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!(
                "qsdnn-lint: failed to write {}: {e}",
                baseline_path.display()
            );
            return 2;
        }
        println!(
            "qsdnn-lint: wrote {} ({} grandfathered finding{})",
            baseline_path.display(),
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        return 0;
    }

    if all {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "qsdnn-lint: {} finding{} ({} files checked, baseline ignored)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            files.len()
        );
        return i32::from(!findings.is_empty());
    }

    // A single-rule run against the full-tree baseline would mark every
    // other rule's entries stale; restrict the comparison to the rule run.
    let base_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let mut base = baseline::parse(&base_text);
    if let Some(r) = &rule {
        base.retain(|(_, entry_rule, _), _| entry_rule == r);
    }
    let diff = baseline::diff(&findings, &base);

    for f in &diff.new {
        println!("{f}");
    }
    for s in &diff.stale {
        println!("stale baseline entry (code fixed, remove it): {s}");
    }
    if diff.new.is_empty() && diff.stale.is_empty() {
        println!(
            "qsdnn-lint: clean ({} files checked, {} grandfathered)",
            files.len(),
            findings.len()
        );
        0
    } else {
        println!(
            "qsdnn-lint: {} new finding{}, {} stale baseline entr{} — run with \
             --update-baseline after triage",
            diff.new.len(),
            if diff.new.len() == 1 { "" } else { "s" },
            diff.stale.len(),
            if diff.stale.len() == 1 { "y" } else { "ies" }
        );
        1
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("qsdnn-lint: {msg}\n\n{USAGE}");
    2
}
