//! `qsdnn-lint` — repo-specific static analysis for the QS-DNN workspace.
//!
//! The serving stack's correctness rests on a handful of invariants that
//! `rustc` and clippy cannot see: every `unsafe` FFI site must be audited,
//! the request path must never panic, wire structs must stay
//! backward-compatible, atomic orderings must be deliberate, and mutex
//! guards must not straddle blocking calls. This crate walks every
//! workspace source file with a hand-rolled lexer ([`lexer`]) and enforces
//! those rules ([`rules`]), reporting findings as `file:line: rule:
//! message`. A committed baseline ([`baseline`]) grandfathers triaged
//! findings so CI only fails on *new* violations.
//!
//! Dependency-free by design — the same offline-vendoring discipline as
//! `crates/obs`. No `syn`, no `proc-macro2`, no clippy internals.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod lexer;
pub mod rules;

/// One rule violation, addressable as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (`unsafe-audit`, `panic-path`, ...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Whitespace-normalized source line, used as the baseline key so
    /// unrelated edits above a grandfathered finding don't invalidate it.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A lexed workspace source file plus the derived facts rules need:
/// which token ranges are `#[cfg(test)]`, which lines carry waivers.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Raw source lines (for snippets).
    pub lines: Vec<String>,
    /// Token stream and comment trivia.
    pub lexed: lexer::Lexed,
    /// Token index ranges (inclusive) covered by `#[test]` / `#[cfg(test)]`.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `src` and precomputes test regions.
    pub fn parse(rel: String, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let test_regions = find_test_regions(&lexed.tokens);
        SourceFile {
            rel,
            lines: src.lines().map(str::to_owned).collect(),
            lexed,
            test_regions,
        }
    }

    /// True when the token at `idx` sits inside a `#[test]` or
    /// `#[cfg(test)]` item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= idx && idx <= hi)
    }

    /// True when a `// LINT-ALLOW(rule)` waiver covers `line` — either on
    /// the line itself (trailing comment) or in the comment run
    /// immediately above it.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        let marker = format!("LINT-ALLOW({rule})");
        self.adjacent_comment(line, &marker)
    }

    /// True when a comment containing `needle` is adjacent to `line`:
    /// trailing on (or spanning) the line itself, or — for standalone
    /// comment runs with no code on their first line — ending on the line
    /// directly above. A *trailing* comment applies only to its own line.
    pub fn adjacent_comment(&self, line: u32, needle: &str) -> bool {
        self.lexed.comments.iter().any(|c| {
            if !c.text.contains(needle) {
                return false;
            }
            if c.start_line <= line && line <= c.end_line {
                return true;
            }
            let standalone = !self.lexed.tokens.iter().any(|t| t.line == c.start_line);
            standalone && c.end_line + 1 == line
        })
    }

    /// Whitespace-normalized text of `line` (1-based).
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
            .unwrap_or_default()
    }

    /// Builds a [`Finding`] for this file, filling in the snippet.
    pub fn finding(&self, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.rel.clone(),
            line,
            rule,
            message,
            snippet: self.snippet(line),
        }
    }

    /// True for serve's request-handling modules, where the panic-path
    /// rule applies.
    pub fn is_request_path(&self) -> bool {
        const MODULES: [&str; 5] = [
            "crates/serve/src/server.rs",
            "crates/serve/src/reactor.rs",
            "crates/serve/src/protocol.rs",
            "crates/serve/src/cache.rs",
            "crates/serve/src/pool.rs",
        ];
        MODULES.contains(&self.rel.as_str())
    }

    /// True for the wire-protocol module, where the wire-compat rule
    /// applies.
    pub fn is_protocol(&self) -> bool {
        self.rel == "crates/serve/src/protocol.rs"
    }

    /// True for library/binary source (not integration tests, benches, or
    /// examples) — where the atomic-ordering and lock-discipline rules
    /// apply.
    pub fn is_src(&self) -> bool {
        !self.rel.contains("/tests/")
            && !self.rel.contains("/benches/")
            && !self.rel.contains("/examples/")
    }
}

/// Token index ranges covered by a `#[test]` or `#[cfg(test)]` attribute
/// and the item that follows it (to the matching `}` or terminating `;`).
/// `#[cfg(not(test))]` is *not* a test region.
fn find_test_regions(tokens: &[lexer::Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (attr_end, is_test) = scan_attr(tokens, i);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end;
        while is_attr_start(tokens, k) {
            k = scan_attr(tokens, k).0;
        }
        // The item extends to the matching `}` of its first top-level
        // brace, or to a `;` before any brace opens (e.g. `use` items).
        let mut depth = 0i64;
        let mut end = tokens.len().saturating_sub(1);
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        end = k;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((attr_start, end));
        i = end + 1;
    }
    regions
}

pub(crate) fn is_attr_start(tokens: &[lexer::Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.text == "#") && tokens.get(i + 1).is_some_and(|t| t.text == "[")
}

/// Scans the attribute starting at `i` (which satisfies [`is_attr_start`]).
/// Returns (index one past the closing `]`, whether this is a test
/// attribute).
pub(crate) fn scan_attr(tokens: &[lexer::Token], i: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            "test" => has_test = true,
            "not" => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

/// Walks `root` collecting every workspace `.rs` file, skipping `target/`,
/// `vendor/` (third-party shims lint themselves), `.git/`, and the
/// linter's own known-bad `fixtures/` trees. Paths come back sorted so
/// findings are deterministic.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                paths.push(path);
            }
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = rel_path(root, &path);
        let bytes = std::fs::read(&path)?;
        let src = String::from_utf8_lossy(&bytes);
        files.push(SourceFile::parse(rel, &src));
    }
    Ok(files)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_the_following_item() {
        let src = "fn a() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\n\
                   fn c() {}\n";
        let f = SourceFile::parse("x.rs".into(), src);
        let unwraps: Vec<usize> = f
            .lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test(unwraps[0]));
        assert!(f.in_test(unwraps[1]));
        let c_idx = f
            .lexed
            .tokens
            .iter()
            .position(|t| t.text == "c")
            .expect("token c");
        assert!(!f.in_test(c_idx));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn a() { x.unwrap(); }\n";
        let f = SourceFile::parse("x.rs".into(), src);
        let idx = f
            .lexed
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(!f.in_test(idx));
    }

    #[test]
    fn stacked_attributes_extend_the_region() {
        let src = "#[test]\n#[ignore]\nfn t() { x.unwrap(); }\n";
        let f = SourceFile::parse("x.rs".into(), src);
        let idx = f
            .lexed
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(f.in_test(idx));
    }

    #[test]
    fn waivers_cover_same_line_and_line_above() {
        let src = "// LINT-ALLOW(panic-path): startup only\nlet x = y.unwrap();\n\
                   let z = w.unwrap(); // LINT-ALLOW(panic-path): also fine\n\
                   let q = r.unwrap();\n";
        let f = SourceFile::parse("x.rs".into(), src);
        assert!(f.waived("panic-path", 2));
        assert!(f.waived("panic-path", 3));
        assert!(!f.waived("panic-path", 4));
        assert!(!f.waived("unsafe-audit", 2));
    }

    #[test]
    fn snippets_normalize_whitespace() {
        let f = SourceFile::parse("x.rs".into(), "   let   x =\t1;\n");
        assert_eq!(f.snippet(1), "let x = 1;");
        assert_eq!(f.snippet(99), "");
    }
}
