//! Property tests: the lexer is total. Whatever bytes a workspace file
//! contains — unterminated strings, stray quotes, half-open block
//! comments, random punctuation — `lex` must return without panicking,
//! and every token/comment it reports must carry a line number that
//! exists in the input.
//!
//! The vendored proptest only supplies integer-range strategies, so each
//! case is a `(seed, length)` pair expanded into a random token soup with
//! the vendored `SmallRng` — failures reproduce from the printed inputs.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qsdnn_lint::lexer::lex;
use qsdnn_lint::SourceFile;

/// Fragments biased toward the lexer's tricky paths: quote and fence
/// openers without closers, nested comment markers, escapes, raw-ident
/// and lifetime prefixes, numeric edge shapes.
const FRAGMENTS: [&str; 32] = [
    "\"", "'", "\\", "r#\"", "r##\"", "\"#", "\"##", "r#", "#", "b\"", "b'", "//", "/*", "*/",
    "\n", "'a", "'\\''", "0x_", "1.", "1..2", "1e", "1e+", "fn", "unsafe", "{", "}", "[", "]",
    "ident", "r#match", "é→", "\t ",
];

fn soup(seed: u64, len: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = String::new();
    for _ in 0..len {
        s.push_str(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_is_total_on_token_soup(seed in 0u64..u64::MAX, len in 0usize..120) {
        let src = soup(seed, len);
        let lexed = lex(&src);
        // Line numbers must be 1-based and within the input.
        let max_line = src.lines().count().max(1) as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= max_line);
        }
        for c in &lexed.comments {
            prop_assert!(c.start_line >= 1 && c.end_line <= max_line);
            prop_assert!(c.start_line <= c.end_line);
        }
    }

    #[test]
    fn full_parse_pipeline_is_total(seed in 0u64..u64::MAX, len in 0usize..80) {
        // SourceFile::parse layers test-region and waiver detection on the
        // lexer; the whole pipeline must be as total as the lexer itself.
        let src = soup(seed, len);
        let file = SourceFile::parse("crates/serve/src/server.rs".into(), &src);
        // Running every rule over garbage must not panic either.
        let _ = qsdnn_lint::rules::run_all(&[file], None);
    }

    #[test]
    fn lexing_is_deterministic(seed in 0u64..u64::MAX, len in 0usize..60) {
        let src = soup(seed, len);
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        prop_assert_eq!(a.comments.len(), b.comments.len());
    }
}
