//! Rule-level integration tests: each `tests/fixtures/*.rs` file is a
//! known-bad snippet with its expected findings documented in its header
//! comment; these tests pin the exact `file:line: rule` output. The
//! fixtures directory is skipped by `collect_files`, so the snippets
//! never leak into a real workspace run.

use std::path::Path;

use qsdnn_lint::rules::run_all;
use qsdnn_lint::{Finding, SourceFile};

/// Parses a fixture under the given synthetic workspace-relative path
/// (rules scope themselves by path) and runs one rule — or all of them
/// when `rule` is `None`.
fn run_fixture(name: &str, rel: &str, rule: Option<&str>) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let file = SourceFile::parse(rel.to_owned(), &src);
    run_all(&[file], rule)
}

fn lines_of(findings: &[Finding]) -> Vec<u32> {
    findings.iter().map(|f| f.line).collect()
}

#[test]
fn unsafe_audit_fixture_findings_are_exact() {
    let out = run_fixture(
        "unsafe_audit.rs",
        "crates/x/src/lib.rs",
        Some("unsafe-audit"),
    );
    assert_eq!(lines_of(&out), vec![4, 11], "findings: {out:#?}");
    assert!(out.iter().all(|f| f.rule == "unsafe-audit"));
    assert_eq!(
        out[0].to_string(),
        "crates/x/src/lib.rs:4: unsafe-audit: unsafe without a `// SAFETY:` comment \
         explaining why the contract holds"
    );
}

#[test]
fn panic_path_fixture_findings_are_exact() {
    let rel = "crates/serve/src/server.rs";
    let out = run_fixture("panic_path.rs", rel, Some("panic-path"));
    assert_eq!(lines_of(&out), vec![5, 6, 7, 8, 9], "findings: {out:#?}");
    assert!(out.iter().all(|f| f.rule == "panic-path" && f.file == rel));
    assert!(out[0].message.contains("`.unwrap()`"));
    assert!(out[1].message.contains("`.expect()`"));
    assert!(out[2].message.contains("`panic!`"));
    assert!(out[3].message.contains("indexing/slicing"));
}

#[test]
fn panic_path_only_applies_to_request_modules() {
    let out = run_fixture(
        "panic_path.rs",
        "crates/core/src/lib.rs",
        Some("panic-path"),
    );
    assert!(out.is_empty(), "panic-path leaked outside serve: {out:#?}");
}

#[test]
fn wire_compat_fixture_findings_are_exact() {
    let rel = "crates/serve/src/protocol.rs";
    let out = run_fixture("wire_compat.rs", rel, Some("wire-compat"));
    assert_eq!(lines_of(&out), vec![6], "findings: {out:#?}");
    assert!(out[0].message.contains("`seq`"));
    assert!(out[0].message.contains("`Envelope`"));
}

#[test]
fn wire_compat_only_applies_to_protocol() {
    let out = run_fixture(
        "wire_compat.rs",
        "crates/serve/src/server.rs",
        Some("wire-compat"),
    );
    assert!(
        out.is_empty(),
        "wire-compat leaked outside protocol.rs: {out:#?}"
    );
}

#[test]
fn atomic_ordering_fixture_findings_are_exact() {
    let out = run_fixture(
        "atomic_ordering.rs",
        "crates/x/src/lib.rs",
        Some("atomic-ordering"),
    );
    assert_eq!(lines_of(&out), vec![5, 10], "findings: {out:#?}");
    assert!(out[0].message.contains("SeqCst"));
    assert!(out[1].message.contains("`mixed`"));
    assert!(out[1].message.contains("mixes orderings"));
}

#[test]
fn lock_discipline_fixture_findings_are_exact() {
    let out = run_fixture(
        "lock_discipline.rs",
        "crates/x/src/lib.rs",
        Some("lock-discipline"),
    );
    assert_eq!(lines_of(&out), vec![7], "findings: {out:#?}");
    assert!(out[0].message.contains("`g`"));
    assert!(out[0].message.contains("recv"));
}

#[test]
fn lexer_tricky_fixture_yields_exactly_the_one_real_finding() {
    // All rules at once, on a request-path rel so panic-path runs too:
    // the raw strings, nested block comments, raw identifiers, and macro
    // brackets before line 16 must all stay silent, and line numbers must
    // survive the multi-line raw string.
    let out = run_fixture("lexer_tricky.rs", "crates/serve/src/server.rs", None);
    assert_eq!(out.len(), 1, "decoys tripped a rule: {out:#?}");
    assert_eq!((out[0].line, out[0].rule), (16, "unsafe-audit"));
}
