//! Known-bad fixture for the atomic-ordering rule. Expected findings:
//! line 5 (unjustified SeqCst on `flag`) and line 10 (mixed orderings
//! on `mixed`). Justified SeqCst, uniform Relaxed, and handoff pass.
pub fn flags(flag: &AtomicBool, mixed: &AtomicU64, ok: &AtomicU64) {
    flag.store(true, Ordering::SeqCst);
    // SeqCst: the fixture's justified total-order case.
    flag.load(Ordering::SeqCst);
    ok.fetch_add(1, Ordering::Relaxed);
    ok.load(Ordering::Relaxed);
    mixed.fetch_add(1, Ordering::Relaxed);
    mixed.load(Ordering::Acquire);
}

pub fn handoff(gate: &AtomicBool) {
    gate.store(true, Ordering::Release);
    let _ = gate.load(Ordering::Acquire);
}
