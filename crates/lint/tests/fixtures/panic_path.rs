//! Known-bad fixture for the panic-path rule. Expected findings: lines
//! 5, 6, 7, 8, and 9. Literal indices, full-range slices, waivers, and
//! `#[cfg(test)]` code stay silent.
pub fn handler(opt: Option<u32>, res: Result<u32, ()>, arr: &[u8], i: usize) {
    let _a = opt.unwrap();
    let _b = res.expect("present");
    panic!("boom");
    let _c = arr[i];
    let _d = &arr[..i];
    let fds = [0u8; 4];
    let _ok = fds[0];
    let _full = &arr[..];
    // LINT-ALLOW(panic-path): exercising the waiver path.
    let _w = opt.unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        None::<u32>.unwrap();
    }
}
