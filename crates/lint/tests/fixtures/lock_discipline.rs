//! Known-bad fixture for the lock-discipline rule. Expected finding:
//! line 7 (`recv` while guard `g` is live). Scoped, dropped, detached,
//! and waived cases stay silent.

pub fn stall(m: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let job = rx.recv();
    drop(job);
    drop(g);
}

pub fn scoped(m: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    {
        let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(g);
    }
    let _ = rx.recv();
}

pub fn detached(m: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    let v = std::mem::take(&mut *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
    let _ = rx.recv();
    drop(v);
}

pub fn waived(m: &Mutex<Vec<u8>>, out: &mut TcpStream) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // LINT-ALLOW(lock-discipline): the lock exists to serialize writes.
    let _ = out.write_all(&g);
}
