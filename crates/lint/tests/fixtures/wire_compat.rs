//! Known-bad fixture for the wire-compat rule. Expected finding: line 6
//! (mandatory field `seq`). Defaulted, skipped, `Option`, and
//! non-`Deserialize` fields stay silent.
#[derive(Debug, Serialize, Deserialize)]
pub struct Envelope {
    pub seq: u64,
    #[serde(default)]
    pub trace: bool,
    pub note: Option<String>,
    #[serde(default)]
    pub tags: HashMap<String, Vec<u32>>,
}

#[derive(Debug, Clone)]
pub struct NotWire {
    pub seq: u64,
}

#[derive(Deserialize)]
pub struct Newtype(pub u32);
