//! Lexer stress fixture: raw strings, nested block comments, raw
//! identifiers, and macros must not confuse line tracking. Expected
//! finding: unsafe-audit at line 16 — everything before it is a decoy.

pub fn decoys() {
    let _s = "unsafe { panic!() } .unwrap()";
    let _r = r#"a "quoted" unsafe block
spanning lines"#;
    let _fence = r##"ends with "# not here"##;
    /* block /* nested unsafe */ still a comment */
    let _c = '\'';
    let _lt: &'static str = "lifetime vs char";
    let r#match = vec![1, 2];
    let _f = 1.0e-3; let _range = 1..2;
}
pub unsafe fn tricky_target() {}
