//! Known-bad fixture for the unsafe-audit rule. Expected findings:
//! lines 4 and 11. Everything else must stay silent.

pub unsafe fn missing_comment() {}

// SAFETY: no-op body; nothing to uphold.
pub unsafe fn documented() {}

pub fn body() {
    let p = &1 as *const i32;
    let _bad = unsafe { *p };
    // SAFETY: `p` points at a live stack local.
    let _above = unsafe { *p };
    let _trailing = unsafe { *p }; // SAFETY: same local, still live.
    // LINT-ALLOW(unsafe-audit): exercising the waiver path.
    let _waived = unsafe { *p };
}
