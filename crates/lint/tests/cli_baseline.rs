//! End-to-end test of the `qsdnn-lint` binary against a synthetic
//! workspace: new findings fail, `--update-baseline` grandfathers them,
//! fixed code makes the grandfathered entry stale (which also fails), and
//! a freshly seeded violation trips the baseline again.

use std::path::PathBuf;
use std::process::{Command, Output};

const BAD: &str = "pub fn f() {\n    let p = &1 as *const i32;\n    let _v = unsafe { *p };\n}\n";
const FIXED: &str = "pub fn f() {\n    let p = &1 as *const i32;\n    // SAFETY: `p` points at a live stack local.\n    let _v = unsafe { *p };\n}\n";

struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> TempWorkspace {
        let root =
            std::env::temp_dir().join(format!("qsdnn-lint-e2e-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/x/src")).expect("mkdir workspace");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n")
            .expect("write manifest");
        TempWorkspace { root }
    }

    fn write_lib(&self, src: &str) {
        std::fs::write(self.root.join("crates/x/src/lib.rs"), src).expect("write lib.rs");
    }

    fn lint(&self, extra: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_qsdnn-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("run qsdnn-lint")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn baseline_lifecycle_gates_new_and_stale_findings() {
    let ws = TempWorkspace::new("lifecycle");
    ws.write_lib(BAD);

    // A violation with no baseline is a new finding: nonzero exit, exact
    // file:line: rule report.
    let out = ws.lint(&[]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("crates/x/src/lib.rs:3: unsafe-audit:"),
        "stdout: {}",
        stdout(&out)
    );

    // Grandfather it, then the same tree is clean.
    let out = ws.lint(&["--update-baseline"]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", stdout(&out));
    assert!(ws.root.join("lint-baseline.txt").exists());
    let out = ws.lint(&[]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("clean"), "stdout: {}", stdout(&out));

    // Fixing the code strands the baseline entry: stale entries fail too,
    // so the baseline can only shrink through --update-baseline.
    ws.write_lib(FIXED);
    let out = ws.lint(&[]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("stale baseline entry"),
        "stdout: {}",
        stdout(&out)
    );
    let out = ws.lint(&["--update-baseline"]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", stdout(&out));

    // Seeding a fresh violation trips the (now empty) baseline again.
    ws.write_lib(BAD);
    let out = ws.lint(&[]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("crates/x/src/lib.rs:3: unsafe-audit:"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn all_flag_ignores_the_baseline() {
    let ws = TempWorkspace::new("allflag");
    ws.write_lib(BAD);
    let out = ws.lint(&["--update-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    // Grandfathered, but --all still reports and still exits nonzero.
    let out = ws.lint(&["--all"]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("crates/x/src/lib.rs:3: unsafe-audit:"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn unknown_rule_is_a_usage_error() {
    let ws = TempWorkspace::new("usage");
    ws.write_lib(FIXED);
    let out = ws.lint(&["--rule", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fixture_tree_is_excluded_from_real_runs() {
    // The linter's own known-bad fixtures must never surface as workspace
    // findings: collect_files skips `fixtures/` directories.
    let ws = TempWorkspace::new("fixtures");
    ws.write_lib(FIXED);
    let fixture_dir = ws.root.join("crates/x/tests/fixtures");
    std::fs::create_dir_all(&fixture_dir).expect("mkdir fixtures");
    std::fs::write(fixture_dir.join("bad.rs"), BAD).expect("write fixture");
    let out = ws.lint(&["--all"]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", stdout(&out));
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_qsdnn-lint"))
        .arg("--help")
        .output()
        .expect("run qsdnn-lint --help");
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("USAGE"));
}
