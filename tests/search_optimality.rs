//! Workspace integration test: QS-DNN must reach (or closely approach) the
//! exact optimum where the optimum is computable, and must beat Random
//! Search and the greedy trap.

use qsdnn::baselines::{exhaustive_search, pbqp_search, solve_chain_dp, RandomSearch};
use qsdnn::engine::{toy, AnalyticalPlatform, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn::{QsDnnConfig, QsDnnSearch};

#[test]
fn qsdnn_matches_dp_on_lenet_chain() {
    let net = zoo::lenet5(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 5).profile(&net, Mode::Gpgpu);
    let (_, dp) = solve_chain_dp(&lut).expect("LeNet-5 is a chain");
    let qs = QsDnnSearch::new(QsDnnConfig::with_episodes(1000)).run(&lut);
    assert!(
        qs.best_cost_ms <= dp * 1.02 + 1e-9,
        "QS-DNN {} must be within 2% of DP optimum {dp}",
        qs.best_cost_ms
    );
}

#[test]
fn qsdnn_matches_exhaustive_on_branchy_toy() {
    let net = zoo::toy_branchy(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 5).profile(&net, Mode::Cpu);
    let (_, opt) = exhaustive_search(&lut, 1e7).expect("toy space fits");
    let qs = QsDnnSearch::new(QsDnnConfig::with_episodes(1500)).run(&lut);
    assert!(
        qs.best_cost_ms <= opt * 1.05 + 1e-9,
        "QS-DNN {} vs exhaustive optimum {opt}",
        qs.best_cost_ms
    );
}

#[test]
fn qsdnn_beats_random_search_on_equal_budget() {
    // MobileNet GPGPU, 5 seeds each, 350 episodes (the paper's Fig. 5
    // near-convergence point).
    let net = zoo::mobilenet_v1(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 3).profile(&net, Mode::Gpgpu);
    let mut qs_mean = 0.0;
    let mut rs_mean = 0.0;
    for seed in 0..5u64 {
        qs_mean += QsDnnSearch::new(QsDnnConfig::with_episodes(350).with_seed(seed))
            .run(&lut)
            .best_cost_ms;
        rs_mean += RandomSearch::new(350, seed).run(&lut).best_cost_ms;
    }
    qs_mean /= 5.0;
    rs_mean /= 5.0;
    assert!(
        qs_mean < rs_mean,
        "QS-DNN mean {qs_mean} must beat RS mean {rs_mean}"
    );
}

#[test]
fn qsdnn_escapes_fig1_greedy_trap() {
    let lut = toy::fig1_lut();
    let greedy = lut.cost(&lut.greedy_assignment());
    let qs = QsDnnSearch::new(QsDnnConfig::with_episodes(300)).run(&lut);
    assert!(
        qs.best_cost_ms < greedy,
        "{} vs greedy {greedy}",
        qs.best_cost_ms
    );
}

#[test]
fn pbqp_and_dp_agree_on_roster_chains() {
    for name in ["lenet5", "alexnet", "vgg19"] {
        let net = zoo::by_name(name, 1).unwrap();
        let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Cpu);
        let (_, dp) = solve_chain_dp(&lut).expect("classification chains");
        let pb = pbqp_search(&lut);
        assert!(
            (pb.best_cost_ms - dp).abs() < 1e-6,
            "{name}: pbqp {} vs dp {dp}",
            pb.best_cost_ms
        );
    }
}

#[test]
fn search_cost_matches_lut_reevaluation() {
    // The reported best cost must equal re-evaluating the assignment.
    let net = zoo::squeezenet_v11(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Gpgpu);
    let qs = QsDnnSearch::new(QsDnnConfig::with_episodes(200)).run(&lut);
    let re = lut.cost(&qs.best_assignment);
    assert!(
        (re - qs.best_cost_ms).abs() < 1e-9,
        "{re} vs {}",
        qs.best_cost_ms
    );
}
