//! Serde roundtrips for every persistable artifact: networks, LUTs, search
//! reports and configurations.

use qsdnn::engine::{AnalyticalPlatform, CostLut, Mode, PlatformConfig, Profiler};
use qsdnn::nn::{zoo, Network};
use qsdnn::{EpsilonSchedule, QsDnnConfig, QsDnnSearch, SearchReport};

#[test]
fn network_roundtrip() {
    for name in ["lenet5", "toy_branchy", "mobilenet_v1"] {
        let net = zoo::by_name(name, 1).unwrap();
        let json = serde_json::to_string(&net).expect("serializes");
        let back: Network = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(net, back, "{name}");
    }
}

#[test]
fn lut_roundtrip_preserves_costs() {
    let net = zoo::tiny_cnn(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Gpgpu);
    let json = serde_json::to_string(&lut).unwrap();
    let back: CostLut = serde_json::from_str(&json).unwrap();
    let assign = back.greedy_assignment();
    assert_eq!(lut.cost(&assign), back.cost(&assign));
    assert_eq!(lut.mode(), back.mode());
    assert_eq!(lut.network(), back.network());
}

#[test]
fn search_report_roundtrip() {
    let net = zoo::lenet5(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Cpu);
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(50)).run(&lut);
    let json = serde_json::to_string(&report).unwrap();
    let back: SearchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn config_roundtrip() {
    let cfg = QsDnnConfig {
        schedule: EpsilonSchedule::paper(777),
        alpha: 0.1,
        gamma: 0.8,
        replay_capacity: 64,
        replay: false,
        reward_shaping: false,
        jumpstart: false,
        warm_start: true,
        seed: 99,
    };
    let json = serde_json::to_string(&cfg).unwrap();
    let back: QsDnnConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);

    let pc = PlatformConfig::default();
    let json = serde_json::to_string(&pc).unwrap();
    let back: PlatformConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(pc, back);
}

#[test]
fn reports_can_be_keyed_by_network_name() {
    // The report carries enough identity to archive experiment results.
    let net = zoo::lenet5(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Cpu);
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(10)).run(&lut);
    assert_eq!(report.network, "lenet5");
    assert_eq!(report.method, "qs-dnn");
    assert_eq!(report.episodes, 10);
}
