//! Workspace integration test: every primitive implementing a layer must
//! compute the same function as the Vanilla reference, across all layer
//! kinds and layouts that appear in the zoo.

use qsdnn::nn::zoo;
use qsdnn::primitives::{execute_layer, generate_weights, registry};
use qsdnn::tensor::{DataLayout, Tensor};

/// Runs a full forward pass with Vanilla, then re-executes every layer with
/// every candidate primitive and compares outputs.
fn check_network(name: &str, tol: f32) {
    let net = zoo::by_name(name, 1).expect("known network");
    let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 0xAB);
    let mut acts: Vec<Tensor> = Vec::with_capacity(net.len());
    for node in net.layers() {
        let in_shapes = net.input_shapes(node.id);
        let weights = generate_weights(node, &in_shapes, 0xCD);
        let cands = registry::candidates(node);
        let parents: Vec<&Tensor> = if node.inputs.is_empty() {
            vec![&input]
        } else {
            node.inputs.iter().map(|p| &acts[p.0]).collect()
        };
        let reference = {
            let conv: Vec<Tensor> = parents
                .iter()
                .map(|t| t.to_layout(cands[0].layout))
                .collect();
            let refs: Vec<&Tensor> = conv.iter().collect();
            execute_layer(node, &cands[0], &refs, &weights)
        };
        for prim in &cands[1..] {
            let conv: Vec<Tensor> = parents.iter().map(|t| t.to_layout(prim.layout)).collect();
            let refs: Vec<&Tensor> = conv.iter().collect();
            let got = execute_layer(node, prim, &refs, &weights);
            let d = reference.max_abs_diff(&got).expect("same shape");
            assert!(
                d <= tol,
                "{name}/{}: {prim} differs from vanilla by {d}",
                node.desc.name
            );
        }
        acts.push(reference);
    }
}

#[test]
fn tiny_cnn_all_primitives_agree() {
    check_network("tiny_cnn", 1e-3);
}

#[test]
fn toy_branchy_all_primitives_agree() {
    check_network("toy_branchy", 1e-3);
}

#[test]
fn lenet5_all_primitives_agree() {
    check_network("lenet5", 1e-2);
}

#[test]
fn sphereface_first_stage_primitives_agree() {
    // Full SphereFace is too slow for a unit-style test; check the first
    // eight layers (conv 3x3 s2, relus, residual adds).
    let net = zoo::sphereface20(1);
    let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 7);
    let mut acts: Vec<Tensor> = Vec::new();
    for node in net.layers().iter().take(8) {
        let in_shapes = net.input_shapes(node.id);
        let weights = generate_weights(node, &in_shapes, 9);
        let cands = registry::candidates(node);
        let parents: Vec<&Tensor> = if node.inputs.is_empty() {
            vec![&input]
        } else {
            node.inputs.iter().map(|p| &acts[p.0]).collect()
        };
        let reference = {
            let conv: Vec<Tensor> = parents
                .iter()
                .map(|t| t.to_layout(cands[0].layout))
                .collect();
            let refs: Vec<&Tensor> = conv.iter().collect();
            execute_layer(node, &cands[0], &refs, &weights)
        };
        for prim in &cands[1..] {
            let conv: Vec<Tensor> = parents.iter().map(|t| t.to_layout(prim.layout)).collect();
            let refs: Vec<&Tensor> = conv.iter().collect();
            let got = execute_layer(node, prim, &refs, &weights);
            let d = reference.max_abs_diff(&got).expect("same shape");
            assert!(d <= 5e-2, "{}: {prim} differs by {d}", node.desc.name);
        }
        acts.push(reference);
    }
}
