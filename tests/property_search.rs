//! Property-based tests of the search stack on randomly generated LUTs.

use proptest::prelude::*;

use qsdnn::baselines::{exhaustive_search, pbqp_search, solve_chain_dp, RandomSearch};
use qsdnn::engine::{CostLut, IncomingEdge, LayerEntry, Mode};
use qsdnn::nn::LayerTag;
use qsdnn::primitives::Primitive;
use qsdnn::{QsDnnConfig, QsDnnSearch};

/// Builds a random chain LUT: `layers` layers with `arity` candidates each,
/// times and penalties drawn from the given seeds.
fn random_chain_lut(layers: usize, arity: usize, seed: u64) -> CostLut {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    // Candidate identity does not matter for the search; reuse Vanilla
    // descriptors (the LUT's matrices carry the structure).
    let cands = vec![Primitive::vanilla(); arity];
    let mut entries = Vec::new();
    for l in 0..layers {
        let time_ms: Vec<f64> = (0..arity).map(|_| rng.gen_range(0.1..5.0)).collect();
        let incoming = if l == 0 {
            vec![]
        } else {
            let penalty: Vec<f64> = (0..arity * arity)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        0.0
                    } else {
                        rng.gen_range(0.0..2.0)
                    }
                })
                .collect();
            vec![IncomingEdge {
                from: l - 1,
                penalty,
                penalty_energy_mj: vec![],
            }]
        };
        entries.push(LayerEntry {
            name: format!("l{l}"),
            tag: LayerTag::Conv,
            candidates: cands.clone(),
            time_ms,
            energy_mj: vec![],
            incoming,
        });
    }
    CostLut::from_parts("prop_chain", "prop", Mode::Cpu, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DP equals exhaustive search on every random chain.
    #[test]
    fn dp_is_exact_on_random_chains(
        layers in 2usize..6, arity in 2usize..4, seed in 0u64..1000
    ) {
        let lut = random_chain_lut(layers, arity, seed);
        let (_, dp) = solve_chain_dp(&lut).expect("chain");
        let (_, ex) = exhaustive_search(&lut, 1e7).expect("small space");
        prop_assert!((dp - ex).abs() < 1e-9, "dp {dp} vs exhaustive {ex}");
    }

    /// PBQP equals DP on every random chain (both exact there).
    #[test]
    fn pbqp_is_exact_on_random_chains(
        layers in 2usize..7, arity in 2usize..4, seed in 0u64..1000
    ) {
        let lut = random_chain_lut(layers, arity, seed);
        let (_, dp) = solve_chain_dp(&lut).expect("chain");
        let pb = pbqp_search(&lut);
        prop_assert!((pb.best_cost_ms - dp).abs() < 1e-9);
    }

    /// Any search's reported best must equal re-evaluating its assignment
    /// and can never beat the exact optimum.
    #[test]
    fn search_reports_are_consistent_and_bounded(
        layers in 2usize..5, arity in 2usize..4, seed in 0u64..500
    ) {
        let lut = random_chain_lut(layers, arity, seed);
        let (_, opt) = solve_chain_dp(&lut).expect("chain");
        let qs = QsDnnSearch::new(QsDnnConfig::with_episodes(150).with_seed(seed)).run(&lut);
        let rs = RandomSearch::new(150, seed).run(&lut);
        prop_assert!((lut.cost(&qs.best_assignment) - qs.best_cost_ms).abs() < 1e-9);
        prop_assert!((lut.cost(&rs.best_assignment) - rs.best_cost_ms).abs() < 1e-9);
        prop_assert!(qs.best_cost_ms >= opt - 1e-9, "no search may beat the optimum");
        prop_assert!(rs.best_cost_ms >= opt - 1e-9);
    }

    /// Best-so-far curves are monotonically non-increasing.
    #[test]
    fn curves_are_monotone(
        layers in 2usize..5, arity in 2usize..4, seed in 0u64..500
    ) {
        let lut = random_chain_lut(layers, arity, seed);
        for report in [
            QsDnnSearch::new(QsDnnConfig::with_episodes(100).with_seed(seed)).run(&lut),
            RandomSearch::new(100, seed).run(&lut),
        ] {
            let mut prev = f64::INFINITY;
            for r in &report.curve {
                prop_assert!(r.best_so_far_ms <= prev + 1e-12);
                prop_assert!(r.cost_ms >= r.best_so_far_ms - 1e-12);
                prev = r.best_so_far_ms;
            }
        }
    }

    /// With enough episodes QS-DNN converges to the chain optimum.
    #[test]
    fn qsdnn_converges_on_small_random_chains(
        layers in 2usize..4, arity in 2usize..3, seed in 0u64..200
    ) {
        let lut = random_chain_lut(layers, arity, seed);
        let (_, opt) = solve_chain_dp(&lut).expect("chain");
        let qs = QsDnnSearch::new(QsDnnConfig::with_episodes(400).with_seed(seed)).run(&lut);
        prop_assert!(
            qs.best_cost_ms <= opt * 1.01 + 1e-9,
            "qs {} vs opt {opt}", qs.best_cost_ms
        );
    }
}
