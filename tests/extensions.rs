//! Workspace integration test for the paper §VII future-work extensions:
//! the multi-objective (energy) reward and the linear value-function
//! approximation.

use qsdnn::engine::{AnalyticalPlatform, Mode, Objective, Profiler};
use qsdnn::nn::zoo;
use qsdnn::primitives::Processor;
use qsdnn::{ApproxQsDnnSearch, QsDnnConfig, QsDnnSearch};

fn lut(name: &str, mode: Mode) -> qsdnn::engine::CostLut {
    let net = zoo::by_name(name, 1).expect("known network");
    Profiler::with_repeats(AnalyticalPlatform::tx2(), 5).profile(&net, mode)
}

#[test]
fn energy_objective_moves_work_off_the_gpu() {
    let base = lut("mobilenet_v1", Mode::Gpgpu);
    let episodes = 40 * base.len();
    let count_gpu = |lut: &qsdnn::engine::CostLut, assign: &[usize]| {
        assign
            .iter()
            .enumerate()
            .filter(|(l, &ci)| lut.candidates(*l)[ci].processor == Processor::Gpu)
            .count()
    };
    let latency_best = QsDnnSearch::new(QsDnnConfig::with_episodes(episodes))
        .run(&base.with_objective(Objective::Latency));
    let energy_best = QsDnnSearch::new(QsDnnConfig::with_episodes(episodes))
        .run(&base.with_objective(Objective::Energy));
    let gpu_latency = count_gpu(&base, &latency_best.best_assignment);
    let gpu_energy = count_gpu(&base, &energy_best.best_assignment);
    assert!(
        gpu_energy < gpu_latency,
        "energy objective must shed GPU layers ({gpu_energy} vs {gpu_latency})"
    );
    // Each objective must win its own metric.
    assert!(
        base.energy_cost(&energy_best.best_assignment)
            <= base.energy_cost(&latency_best.best_assignment) + 1e-9
    );
    assert!(
        base.cost(&latency_best.best_assignment) <= base.cost(&energy_best.best_assignment) + 1e-9
    );
}

#[test]
fn weighted_objective_interpolates() {
    let base = lut("lenet5", Mode::Gpgpu);
    let a = base.greedy_assignment();
    let t = base.cost(&a);
    let e = base.energy_cost(&a);
    for lambda in [0.0, 0.5, 3.0] {
        let s = base.with_objective(Objective::Weighted { lambda });
        assert!(
            (s.cost(&a) - (t + lambda * e)).abs() < 1e-9,
            "lambda {lambda}"
        );
    }
}

#[test]
fn linear_q_beats_random_exploration_alone() {
    use qsdnn::baselines::RandomSearch;
    let base = lut("mobilenet_v1", Mode::Gpgpu);
    let mut lin = 0.0;
    let mut rnd = 0.0;
    for seed in 0..3u64 {
        lin += ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(500).with_seed(seed))
            .run(&base)
            .best_cost_ms;
        rnd += RandomSearch::new(500, seed).run(&base).best_cost_ms;
    }
    assert!(lin < rnd, "linear-Q {lin} must beat random search {rnd}");
}

#[test]
fn linear_q_report_is_consistent() {
    let base = lut("squeezenet_v11", Mode::Cpu);
    let report = ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(300)).run(&base);
    assert_eq!(report.method, "qs-dnn-linear");
    assert_eq!(report.best_assignment.len(), base.len());
    assert!((base.cost(&report.best_assignment) - report.best_cost_ms).abs() < 1e-9);
    assert!(report.best_cost_ms < base.cost(&base.vanilla_assignment()));
}

#[test]
fn energy_survives_serde_roundtrip() {
    let base = lut("tiny_cnn", Mode::Gpgpu);
    let json = serde_json::to_string(&base).expect("serializes");
    let back: qsdnn::engine::CostLut = serde_json::from_str(&json).expect("deserializes");
    let a = base.vanilla_assignment();
    assert_eq!(base.energy_cost(&a), back.energy_cost(&a));
}
