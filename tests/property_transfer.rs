//! Property tests of the scenario-transfer stack: the descriptor distance
//! is a premetric, descriptor extraction is deterministic (stable like
//! `Fnv64`), and warm-starting from *mismatched* donors never panics and
//! never yields a worse plan than the cold search on the same seed.

use proptest::prelude::*;

use qsdnn::baselines::solve_chain_dp;
use qsdnn::engine::{CostLut, IncomingEdge, LayerEntry, Mode, Objective, ScenarioDescriptor};
use qsdnn::nn::LayerTag;
use qsdnn::primitives::{Library, Primitive};
use qsdnn::{Portfolio, QTable, TransferMapping};

/// Builds a random chain LUT with varied layer tags and candidate sets —
/// richer than `property_search`'s, because transfer alignment keys on
/// exactly those.
fn random_lut(seed: u64) -> CostLut {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let tags = [LayerTag::Conv, LayerTag::Fc, LayerTag::Pool, LayerTag::Relu];
    let layers = rng.gen_range(1..6);
    let mut built: Vec<LayerEntry> = Vec::new();
    for l in 0..layers {
        let arity = rng.gen_range(1..4);
        // Candidate 0 stays the Vanilla fallback (a LUT invariant the
        // baselines rely on); later candidates vary by library.
        let candidates: Vec<Primitive> = (0..arity)
            .map(|ci| {
                let mut p = Primitive::vanilla();
                if ci > 0 {
                    p.library = Library::ALL[rng.gen_range(0..Library::ALL.len())];
                }
                p
            })
            .collect();
        let time_ms: Vec<f64> = (0..arity).map(|_| rng.gen_range(0.1..9.0)).collect();
        let incoming = if l == 0 {
            vec![]
        } else {
            let n_prev = built[l - 1].candidates.len();
            vec![IncomingEdge {
                from: l - 1,
                penalty: (0..n_prev * arity)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect(),
                penalty_energy_mj: vec![],
            }]
        };
        built.push(LayerEntry {
            name: format!("l{l}"),
            tag: tags[rng.gen_range(0..tags.len())],
            candidates,
            time_ms,
            energy_mj: vec![],
            incoming,
        });
    }
    CostLut::from_parts(format!("net{}", seed % 3), "prop", Mode::Cpu, built)
}

fn random_descriptor(seed: u64) -> ScenarioDescriptor {
    let objectives = [
        Objective::Latency,
        Objective::Energy,
        Objective::Weighted { lambda: 0.5 },
    ];
    ScenarioDescriptor::of(&random_lut(seed))
        .with_batch(1 << (seed % 5))
        .with_objective(&objectives[(seed % 3) as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `distance` is a premetric: identity at zero, symmetric,
    /// non-negative — over arbitrary descriptor pairs.
    #[test]
    fn distance_is_a_premetric(sa in 0u64..100_000, sb in 0u64..100_000) {
        let a = random_descriptor(sa);
        let b = random_descriptor(sb);
        prop_assert_eq!(a.distance(&a), 0.0, "d(a,a) == 0");
        prop_assert_eq!(b.distance(&b), 0.0, "d(b,b) == 0");
        let ab = a.distance(&b);
        let ba = b.distance(&a);
        prop_assert!(ab >= 0.0, "non-negative: {}", ab);
        prop_assert!(ab.is_finite());
        prop_assert_eq!(ab, ba, "symmetric");
    }

    /// Descriptor extraction is pure and deterministic across runs —
    /// equal LUTs give equal descriptors and equal fingerprints, like
    /// `Fnv64`-based LUT fingerprinting.
    #[test]
    fn extraction_is_deterministic(seed in 0u64..100_000) {
        let lut_a = random_lut(seed);
        let lut_b = random_lut(seed);
        prop_assert_eq!(&lut_a, &lut_b, "generator is deterministic");
        let da = ScenarioDescriptor::of(&lut_a).with_batch(2).with_objective(&Objective::Latency);
        let db = ScenarioDescriptor::of(&lut_b).with_batch(2).with_objective(&Objective::Latency);
        prop_assert_eq!(&da, &db);
        prop_assert_eq!(da.fingerprint(), db.fingerprint());
        // And distinct scenarios get distinct fingerprints (collision
        // smoke check, not a guarantee).
        let other = random_descriptor(seed.wrapping_add(1));
        if da != other {
            prop_assert!(da.fingerprint() != other.fingerprint()
                || da.distance(&other) == 0.0);
        }
    }

    /// Warm-starting from an arbitrary (usually mismatched) donor never
    /// panics and never produces a worse final plan than the cold search
    /// on the same seed: the transfer either maps something useful or
    /// falls back to cold, and the portfolio keeps its exact chain-DP
    /// member, which pins both runs to the chain optimum.
    #[test]
    fn mismatched_donors_never_hurt_the_portfolio(
        recipient_seed in 0u64..10_000,
        donor_seed in 0u64..10_000,
    ) {
        let recipient = random_lut(recipient_seed);
        let donor_lut = random_lut(donor_seed);
        let recipient_desc = ScenarioDescriptor::of(&recipient);
        let donor_desc = ScenarioDescriptor::of(&donor_lut);
        let mapping = TransferMapping::between(&donor_desc, &recipient_desc);

        // Donor table: the donor's greedy assignment backbone (a plan the
        // service could have cached for the donor scenario).
        let dims: Vec<usize> = (0..donor_lut.len())
            .map(|l| donor_lut.candidates(l).len())
            .collect();
        let assignment = donor_lut.greedy_assignment();
        let costs: Vec<f64> = assignment
            .iter()
            .enumerate()
            .map(|(l, &ci)| donor_lut.time(l, ci))
            .collect();
        let donor = QTable::from_best_path(&dims, &assignment, &costs)
            .expect("greedy assignment is consistent with its own LUT");

        let portfolio = Portfolio::paper_default(120, &[recipient_seed + 1]);
        let cold = portfolio.run_sequential(&recipient).expect("applicable");
        let warm = portfolio
            .warmed()
            .run_sequential_warm(&recipient, &donor, &mapping)
            .expect("warm portfolio stays applicable");

        prop_assert!(
            warm.best.best_cost_ms <= cold.best.best_cost_ms + 1e-9,
            "warm {} must not lose to cold {} (mapping states: {})",
            warm.best.best_cost_ms,
            cold.best.best_cost_ms,
            mapping.mapped_states()
        );
        // Both are pinned to the exact optimum by the chain-DP member.
        let (_, opt) = solve_chain_dp(&recipient).expect("chain");
        prop_assert!((warm.best.best_cost_ms - opt).abs() < 1e-9);
        prop_assert!((cold.best.best_cost_ms - opt).abs() < 1e-9);
    }
}

/// Deterministic spot-check of the fallback contract: an empty transfer
/// mapping must leave the warm run literally identical to the cold run.
#[test]
fn empty_mapping_falls_back_to_the_exact_cold_search() {
    let recipient = random_lut(7);
    let mut donor_desc = ScenarioDescriptor::of(&recipient);
    for l in &mut donor_desc.layers {
        l.tag = "input".into(); // no recipient layer aligns
    }
    let mapping = TransferMapping::between(&donor_desc, &ScenarioDescriptor::of(&recipient));
    assert!(mapping.is_empty());
    let donor = QTable::with_dims(vec![1; recipient.len()]);
    let portfolio = Portfolio::paper_default(100, &[3]);
    let cold = portfolio.run_sequential(&recipient).expect("applicable");
    let warm = portfolio
        .warmed()
        .run_sequential_warm(&recipient, &donor, &mapping)
        .expect("applicable");
    assert_eq!(warm.best.best_assignment, cold.best.best_assignment);
    assert_eq!(
        warm.best.best_cost_ms.to_bits(),
        cold.best.best_cost_ms.to_bits()
    );
    assert_eq!(warm.best.episodes, cold.best.episodes, "full cold budget");
    assert_eq!(warm.winner_index, cold.winner_index);
}
