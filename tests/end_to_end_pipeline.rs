//! Workspace integration test: the full pipeline — profile → search →
//! execute — on both platforms, verifying functional equivalence of the
//! optimized implementation.

use qsdnn::engine::{run_network, AnalyticalPlatform, MeasuredPlatform, Mode, Platform, Profiler};
use qsdnn::nn::zoo;
use qsdnn::tensor::{DataLayout, Tensor};
use qsdnn::{QsDnnConfig, QsDnnSearch};

#[test]
fn analytical_pipeline_tiny_cnn() {
    let net = zoo::tiny_cnn(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 5).profile(&net, Mode::Gpgpu);
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(500)).run(&lut);
    assert!(report.best_cost_ms < lut.cost(&lut.vanilla_assignment()));

    let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 1);
    let base = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 2);
    let fast = run_network(&net, &lut, &report.best_assignment, &input, 2);
    assert!(base
        .output
        .approx_eq(&fast.output, 1e-3)
        .expect("same shape"));
}

#[test]
fn measured_pipeline_tiny_cnn() {
    let net = zoo::tiny_cnn(1);
    let lut = Profiler::with_repeats(MeasuredPlatform::new(3), 3).profile(&net, Mode::Cpu);
    // Measured times must be positive and finite for every candidate.
    for l in lut.layers() {
        for (&t, p) in l.time_ms.iter().zip(&l.candidates) {
            assert!(t.is_finite() && t >= 0.0, "{}: {p} time {t}", l.name);
        }
    }
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(300)).run(&lut);
    let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 5);
    let base = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 9);
    let fast = run_network(&net, &lut, &report.best_assignment, &input, 9);
    assert!(base
        .output
        .approx_eq(&fast.output, 1e-3)
        .expect("same shape"));
}

#[test]
fn platforms_agree_on_vanilla_being_slowest_conv() {
    // Both cost sources must rank Vanilla as the slowest conv option on a
    // conv big enough to be compute-bound.
    let net = zoo::sphereface20(1);
    let conv = net
        .layers()
        .iter()
        .find(|l| l.desc.name == "conv2_1")
        .unwrap();
    let cands = qsdnn::primitives::registry::candidates(conv);
    let cpu_cands: Vec<_> = cands
        .iter()
        .filter(|p| p.processor == qsdnn::primitives::Processor::Cpu)
        .collect();

    let mut ana = AnalyticalPlatform::tx2();
    let ana_vanilla = ana.layer_time_ms(&net, conv, cpu_cands[0]);
    let ana_best = cpu_cands[1..]
        .iter()
        .map(|p| ana.layer_time_ms(&net, conv, p))
        .fold(f64::INFINITY, f64::min);
    assert!(ana_vanilla > ana_best);

    let mut meas = MeasuredPlatform::new(1);
    let m_vanilla = (0..3)
        .map(|_| meas.layer_time_ms(&net, conv, cpu_cands[0]))
        .fold(f64::MAX, f64::min);
    let m_best = cpu_cands[1..]
        .iter()
        .map(|p| {
            (0..3)
                .map(|_| meas.layer_time_ms(&net, conv, p))
                .fold(f64::MAX, f64::min)
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        m_vanilla > m_best,
        "measured vanilla {m_vanilla} vs best {m_best}"
    );
}

#[test]
fn branchy_network_pipeline_handles_joins() {
    let net = zoo::toy_branchy(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 3).profile(&net, Mode::Gpgpu);
    // All edges must be present (concat has 2 inputs, add has 2 inputs).
    let edge_count: usize = lut.layers().iter().map(|l| l.incoming.len()).sum();
    assert_eq!(edge_count, net.edges().len());
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(400)).run(&lut);
    let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 13);
    let base = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 21);
    let fast = run_network(&net, &lut, &report.best_assignment, &input, 21);
    assert!(base
        .output
        .approx_eq(&fast.output, 1e-3)
        .expect("same shape"));
}

#[test]
fn lut_roundtrips_through_json() {
    let net = zoo::lenet5(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Gpgpu);
    let json = serde_json::to_string(&lut).expect("serializes");
    let back: qsdnn::engine::CostLut = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(lut, back);
    // Costs must survive the roundtrip bit-exactly.
    let a = lut.vanilla_assignment();
    assert_eq!(lut.cost(&a), back.cost(&a));
}
