//! Workspace integration test: the paper's §VI qualitative claims must hold
//! on the simulated platform (shape reproduction, not absolute numbers —
//! see DESIGN.md §4).

use qsdnn::baselines::RandomSearch;
use qsdnn::engine::{AnalyticalPlatform, CostLut, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn::primitives::{Library, Processor};
use qsdnn::{QsDnnConfig, QsDnnSearch};

fn lut_for(name: &str, mode: Mode) -> CostLut {
    let net = zoo::by_name(name, 1).expect("known network");
    Profiler::with_repeats(AnalyticalPlatform::tx2(), 5).profile(&net, mode)
}

fn bsl(lut: &CostLut) -> (Library, f64) {
    Library::ALL
        .iter()
        .map(|&lib| (lib, lut.cost(&lut.single_library_assignment(lib))))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
}

/// §VI.A / Table II: tens-of-× CPU speedup vs the dependency-free baseline
/// on the conv-heavy ImageNet networks (the paper headline is 45×).
#[test]
fn cpu_speedup_vs_vanilla_is_tens_of_x() {
    let lut = lut_for("vgg19", Mode::Cpu);
    let vanilla = lut.cost(&lut.vanilla_assignment());
    let qs = QsDnnSearch::new(QsDnnConfig::default()).run(&lut);
    let speedup = vanilla / qs.best_cost_ms;
    assert!(
        (20.0..90.0).contains(&speedup),
        "VGG-19 CPU speedup {speedup:.1}x should be tens of x (paper: 45x)"
    );
}

/// §VI.A: ~2× average GPGPU speedup over the Best Single Library across the
/// ImageNet networks.
#[test]
fn gpgpu_speedup_over_bsl_is_about_2x() {
    let mut ratios = Vec::new();
    for name in [
        "alexnet",
        "vgg19",
        "googlenet",
        "mobilenet_v1",
        "squeezenet_v11",
    ] {
        let lut = lut_for(name, Mode::Gpgpu);
        let (_, bsl_cost) = bsl(&lut);
        let qs = QsDnnSearch::new(QsDnnConfig::default()).run(&lut);
        ratios.push(bsl_cost / qs.best_cost_ms);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (1.3..4.0).contains(&mean),
        "mean GPGPU speedup over BSL {mean:.2}x should be ~2x (got {ratios:?})"
    );
}

/// §VI.A: "the fastest implementation for Lenet-5 in GPGPU mode is actually
/// a pure CPU implementation" — transfers eat the GPU advantage.
#[test]
fn lenet_gpgpu_winner_is_pure_cpu() {
    let lut = lut_for("lenet5", Mode::Gpgpu);
    let qs = QsDnnSearch::new(QsDnnConfig::default()).run(&lut);
    for (l, &ci) in qs.best_assignment.iter().enumerate() {
        let prim = lut.candidates(l)[ci];
        assert_eq!(
            prim.processor,
            Processor::Cpu,
            "layer {} chose {prim}, expected pure-CPU solution",
            lut.layers()[l].name
        );
    }
}

/// §VI.A: MobileNet GPGPU gains >1.4× over BSL by mixing ArmCL depth-wise
/// (CPU) with cuDNN convolutions (GPU).
#[test]
fn mobilenet_learns_heterogeneous_mix() {
    let lut = lut_for("mobilenet_v1", Mode::Gpgpu);
    let (_, bsl_cost) = bsl(&lut);
    let qs = QsDnnSearch::new(QsDnnConfig::default()).run(&lut);
    let speedup = bsl_cost / qs.best_cost_ms;
    assert!(
        speedup > 1.25,
        "MobileNet GPGPU vs BSL {speedup:.2}x (paper: >1.4x)"
    );
    // The solution must actually be heterogeneous: depthwise on ArmCL/CPU,
    // at least some convolutions on cuDNN/GPU.
    let mut armcl_dw = 0;
    let mut gpu_layers = 0;
    for (l, &ci) in qs.best_assignment.iter().enumerate() {
        let prim = lut.candidates(l)[ci];
        let entry = &lut.layers()[l];
        if entry.tag == qsdnn::nn::LayerTag::DepthwiseConv && prim.library == Library::ArmCl {
            armcl_dw += 1;
        }
        if prim.processor == Processor::Gpu {
            gpu_layers += 1;
        }
    }
    assert!(
        armcl_dw >= 8,
        "expected most depthwise layers on ArmCL, got {armcl_dw}/13"
    );
    assert!(gpu_layers > 0, "expected some layers on the GPU");
}

/// §VI.A: cuDNN-only is crippled on FC-heavy nets (no FC primitive), so
/// QS-DNN's margin over cuDNN is biggest there.
#[test]
fn cudnn_fc_hole_drives_vgg_gain() {
    let lut = lut_for("vgg19", Mode::Gpgpu);
    let cudnn = lut.cost(&lut.single_library_assignment(Library::CuDnn));
    let qs = QsDnnSearch::new(QsDnnConfig::default()).run(&lut);
    assert!(
        cudnn / qs.best_cost_ms > 1.5,
        "VGG-19 gain over cuDNN-only {:.2}x should be large",
        cudnn / qs.best_cost_ms
    );
    // And the learned FC layers must not be Vanilla.
    for (l, &ci) in qs.best_assignment.iter().enumerate() {
        let entry = &lut.layers()[l];
        if entry.tag == qsdnn::nn::LayerTag::Fc {
            assert_ne!(
                entry.candidates[ci].library,
                Library::Vanilla,
                "{} should use an accelerated FC",
                entry.name
            );
        }
    }
}

/// §VI.B: RL beats RS consistently; the gap grows with design-space size.
#[test]
fn rl_beats_rs_with_larger_gap_on_bigger_spaces() {
    let budget = 350;
    let gap = |name: &str| {
        let lut = lut_for(name, Mode::Gpgpu);
        let mut qs = 0.0;
        let mut rs = 0.0;
        for seed in 0..3u64 {
            qs += QsDnnSearch::new(QsDnnConfig::with_episodes(budget).with_seed(seed))
                .run(&lut)
                .best_cost_ms;
            rs += RandomSearch::new(budget, seed).run(&lut).best_cost_ms;
        }
        rs / qs
    };
    let small = gap("lenet5");
    let large = gap("googlenet");
    assert!(
        small >= 0.99,
        "RL should not lose on LeNet (ratio {small:.2})"
    );
    assert!(
        large > 1.05,
        "RL should clearly win on GoogLeNet (ratio {large:.2})"
    );
    assert!(
        large > small * 0.9,
        "gap should not shrink dramatically with size"
    );
}
