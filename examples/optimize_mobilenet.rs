//! The paper's marquee GPGPU case: MobileNet-v1.
//!
//! QS-DNN learns to mix ArmCL's optimized depth-wise kernels (CPU), cuDNN
//! pointwise convolutions (GPU) and Vanilla/ArmCL ReLU+BatchNorm to avoid
//! costly extra copies to the GPU — beating the best single library by
//! >1.4× (paper §VI.A). Run with:
//!
//! ```sh
//! cargo run --release -p qsdnn --example optimize_mobilenet
//! ```

use std::collections::BTreeMap;

use qsdnn::engine::{AnalyticalPlatform, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn::primitives::Library;
use qsdnn::{QsDnnConfig, QsDnnSearch};

fn main() {
    let net = zoo::mobilenet_v1(1);
    println!("network: {} ({} layers)", net.name(), net.len());

    let mut profiler = Profiler::new(AnalyticalPlatform::tx2());
    let lut = profiler.profile(&net, Mode::Gpgpu);

    // Best Single Library: the strongest of the per-library global
    // implementations.
    let mut bsl = (Library::Vanilla, f64::INFINITY);
    for lib in Library::ALL {
        let cost = lut.cost(&lut.single_library_assignment(lib));
        println!("{:<9}: {:>8.3} ms", lib.name(), cost);
        if cost < bsl.1 {
            bsl = (lib, cost);
        }
    }

    let report = QsDnnSearch::new(QsDnnConfig::default()).run(&lut);
    println!(
        "\nqs-dnn   : {:>8.3} ms  ({:.2}x over BSL = {})",
        report.best_cost_ms,
        bsl.1 / report.best_cost_ms,
        bsl.0.name()
    );

    // Which libraries did the agent pick?
    let mut mix: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (l, &ci) in report.best_assignment.iter().enumerate() {
        let prim = lut.candidates(l)[ci];
        *mix.entry(prim.library.name()).or_default() += 1;
    }
    println!("\nlearned library mix (layers per library):");
    for (lib, count) in mix {
        println!("  {lib:<9} {count}");
    }
}
