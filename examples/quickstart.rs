//! Quickstart: the full QS-DNN pipeline on LeNet-5 in ~30 lines.
//!
//! Phase 1 profiles every primitive on the simulated Jetson TX-2 and builds
//! the cost LUT; Phase 2 runs the Q-learning search. Run with:
//!
//! ```sh
//! cargo run --release -p qsdnn --example quickstart
//! ```

use qsdnn::engine::{AnalyticalPlatform, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn::primitives::Library;
use qsdnn::{QsDnnConfig, QsDnnSearch};

fn main() {
    let net = zoo::lenet5(1);
    println!(
        "network: {} ({} layers, {:.1} MMACs)",
        net.name(),
        net.len(),
        net.total_macs() as f64 / 1e6
    );

    // Phase 1: inference on the (simulated) embedded system.
    let mut profiler = Profiler::new(AnalyticalPlatform::tx2());
    let lut = profiler.profile(&net, Mode::Gpgpu);
    println!(
        "design space: {:.2e} implementations",
        lut.design_space_size()
    );

    // Phase 2: RL-based search (paper schedule, 1000 episodes).
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(1000)).run(&lut);

    let vanilla = lut.cost(&lut.vanilla_assignment());
    println!("\nvanilla baseline : {:>9.3} ms", vanilla);
    for lib in [
        Library::Blas,
        Library::Nnpack,
        Library::ArmCl,
        Library::CuDnn,
    ] {
        let cost = lut.cost(&lut.single_library_assignment(lib));
        println!(
            "{:<17}: {:>9.3} ms ({:.1}x)",
            lib.name(),
            cost,
            vanilla / cost
        );
    }
    println!(
        "qs-dnn           : {:>9.3} ms ({:.1}x)  [search took {:.0} ms]",
        report.best_cost_ms,
        vanilla / report.best_cost_ms,
        report.wall_time_ms
    );

    println!("\nchosen primitives:");
    for (l, &ci) in report.best_assignment.iter().enumerate() {
        let entry = &lut.layers()[l];
        println!("  {:<12} -> {}", entry.name, entry.candidates[ci]);
    }
}
