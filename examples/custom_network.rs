//! Bring your own network: build a DAG with `NetworkBuilder`, profile it on
//! the *measured* platform (real Rust kernels, wall-clock timed), search,
//! and verify the optimized implementation end to end.
//!
//! ```sh
//! cargo run --release -p qsdnn --example custom_network
//! ```

use qsdnn::engine::{run_network, MeasuredPlatform, Mode, Profiler};
use qsdnn::nn::{ConvParams, FcParams, NetworkBuilder, PoolKind, PoolParams};
use qsdnn::tensor::{DataLayout, Shape, Tensor};
use qsdnn::{QsDnnConfig, QsDnnSearch};

fn main() {
    // A small edge-vision backbone with a residual connection.
    let mut b = NetworkBuilder::new("my_edge_net");
    let x = b.input(Shape::new(1, 3, 32, 32));
    let c1 = b
        .conv("stem", x, ConvParams::square(16, 3, 1, 1))
        .expect("shapes fit");
    let r1 = b.relu("stem_relu", c1);
    let c2 = b
        .conv("body_a", r1, ConvParams::square(16, 3, 1, 1))
        .expect("shapes fit");
    let r2 = b.relu("body_a_relu", c2);
    let c3 = b
        .conv("body_b", r2, ConvParams::square(16, 3, 1, 1))
        .expect("shapes fit");
    let res = b.add("residual", c3, r1).expect("equal shapes");
    let r3 = b.relu("body_relu", res);
    let p = b
        .pool("pool", r3, PoolParams::square(PoolKind::Max, 2, 2, 0))
        .expect("fits");
    let f = b.fc("head", p, FcParams::new(10)).expect("fits");
    b.softmax("prob", f);
    let net = b.build().expect("non-empty");
    println!("network: {} ({} layers)", net.name(), net.len());

    // Phase 1 with real kernel timings (5 repeats to de-noise).
    let mut profiler = Profiler::with_repeats(MeasuredPlatform::new(7), 5);
    let lut = profiler.profile(&net, Mode::Cpu);

    // Phase 2.
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(400)).run(&lut);
    let vanilla = lut.cost(&lut.vanilla_assignment());
    println!("vanilla : {vanilla:>8.3} ms  (measured on this host)");
    println!(
        "qs-dnn  : {:>8.3} ms  ({:.1}x)",
        report.best_cost_ms,
        vanilla / report.best_cost_ms
    );

    // Execute both implementations on the same input and verify they
    // compute the same function.
    let input = Tensor::random(Shape::new(1, 3, 32, 32), DataLayout::Nchw, 11);
    let base = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 7);
    let fast = run_network(&net, &lut, &report.best_assignment, &input, 7);
    let diff = base.output.max_abs_diff(&fast.output).expect("same shape");
    println!(
        "\noptimized run: {} layout conversions, max output diff vs vanilla = {diff:.2e}",
        fast.layout_conversions
    );
    assert!(
        diff < 1e-3,
        "optimized implementation must compute the same function"
    );
    println!("verification passed ✔");
}
