//! VGG-19 in GPGPU mode: the "cuDNN has no FC primitive" case.
//!
//! cuDNN-only implementations must fall back to the Vanilla CPU FC, so the
//! search routes the three giant FC layers to cuBLAS GEMV (or BLAS on CPU)
//! and roughly doubles throughput over the best single library. This
//! example also races every search baseline on the same LUT. Run with:
//!
//! ```sh
//! cargo run --release -p qsdnn --example heterogeneous_vgg
//! ```

use qsdnn::baselines::{
    pbqp_search, solve_chain_dp, RandomSearch, SimulatedAnnealing, SimulatedAnnealingConfig,
};
use qsdnn::engine::{AnalyticalPlatform, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn::primitives::Library;
use qsdnn::{QsDnnConfig, QsDnnSearch};

fn main() {
    let net = zoo::vgg19(1);
    println!(
        "network: {} ({} layers, {:.1} GMACs)",
        net.name(),
        net.len(),
        net.total_macs() as f64 / 1e9
    );

    let mut profiler = Profiler::new(AnalyticalPlatform::tx2());
    let lut = profiler.profile(&net, Mode::Gpgpu);

    let vanilla = lut.cost(&lut.vanilla_assignment());
    let cudnn = lut.cost(&lut.single_library_assignment(Library::CuDnn));
    println!("vanilla          : {vanilla:>9.3} ms");
    println!("cudnn-only (BSL) : {cudnn:>9.3} ms — FC layers fall back to Vanilla!");

    let qs = QsDnnSearch::new(QsDnnConfig::default()).run(&lut);
    println!(
        "qs-dnn           : {:>9.3} ms ({:.2}x over cuDNN-only)",
        qs.best_cost_ms,
        cudnn / qs.best_cost_ms
    );

    // Where did the FC layers go?
    for (l, &ci) in qs.best_assignment.iter().enumerate() {
        let entry = &lut.layers()[l];
        if entry.name.starts_with("fc") {
            println!("  {:<6} -> {}", entry.name, entry.candidates[ci]);
        }
    }

    // Race the baselines on the identical LUT.
    println!("\nbaselines:");
    let rs = RandomSearch::new(1000, 42).run(&lut);
    println!("  random search (1000 ep) : {:>9.3} ms", rs.best_cost_ms);
    let sa = SimulatedAnnealing::new(SimulatedAnnealingConfig::default()).run(&lut);
    println!("  simulated annealing     : {:>9.3} ms", sa.best_cost_ms);
    let pbqp = pbqp_search(&lut);
    println!("  {:<22}  : {:>9.3} ms", pbqp.method, pbqp.best_cost_ms);
    if let Some((_, dp)) = solve_chain_dp(&lut) {
        println!("  chain DP (exact optimum): {dp:>9.3} ms");
        println!(
            "\nqs-dnn is within {:.2}% of the exact optimum",
            (qs.best_cost_ms / dp - 1.0) * 100.0
        );
    }
}
