//! Minimal, dependency-free re-implementation of serde's `Serialize` /
//! `Deserialize` derive macros, vendored because this build environment has
//! no access to crates.io.
//!
//! Supports the subset of shapes this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(default)]`),
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's JSON representation).
//!
//! Generics, lifetimes and the remaining `#[serde(...)]` attributes are not
//! supported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Returns true when the attribute token group (the `[...]` contents) is
/// `serde(default)` (possibly among other serde flags, which we reject).
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() || ident_of(&toks[0]).as_deref() != Some("serde") {
        return false;
    }
    if let Some(TokenTree::Group(inner)) = toks.get(1) {
        let flags: Vec<String> = inner
            .stream()
            .into_iter()
            .filter_map(|t| ident_of(&t))
            .collect();
        for f in &flags {
            if f != "default" {
                panic!("vendored serde_derive: unsupported attribute #[serde({f})]");
            }
        }
        flags.iter().any(|f| f == "default")
    } else {
        false
    }
}

/// Skips attributes at `i`, returning whether one of them was
/// `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        // Inner attributes (`#![..]`) cannot appear here.
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Bracket && attr_is_serde_default(g) {
                has_default = true;
            }
            *i += 1;
        } else {
            panic!("vendored serde_derive: malformed attribute");
        }
    }
    has_default
}

/// Skips a `pub` / `pub(..)` visibility marker.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if ident_of(&toks[*i]).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Skips a type (field type), stopping at a top-level `,`. Tracks `<`/`>`
/// nesting so commas inside generic arguments are not terminators.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Parses `{ name: Type, .. }` contents into named fields.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = ident_of(&toks[i])
            .unwrap_or_else(|| panic!("vendored serde_derive: expected field name"));
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            _ => panic!("vendored serde_derive: expected `:` after field `{name}`"),
        }
        skip_type(&toks, &mut i);
        // Consume the trailing comma if present.
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple-struct / tuple-variant `( .. )` group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        skip_type(&toks, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i])
            .unwrap_or_else(|| panic!("vendored serde_derive: expected variant name"));
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the comma.
        while let Some(t) = toks.get(i) {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind =
        ident_of(&toks[i]).unwrap_or_else(|| panic!("vendored serde_derive: expected struct/enum"));
    i += 1;
    let name =
        ident_of(&toks[i]).unwrap_or_else(|| panic!("vendored serde_derive: expected type name"));
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            _ => panic!("vendored serde_derive: malformed enum `{name}`"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str(
                        "        let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                    );
                    for f in fs {
                        out.push_str(&format!(
                            "        fields.push((String::from(\"{0}\"), ::serde::Serialize::serialize(&self.{0})));\n",
                            f.name
                        ));
                    }
                    out.push_str("        ::serde::Value::Object(fields)\n");
                }
                Fields::Tuple(1) => {
                    out.push_str("        ::serde::Serialize::serialize(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    out.push_str("        ::serde::Value::Array(vec![\n");
                    for idx in 0..*n {
                        out.push_str(&format!(
                            "            ::serde::Serialize::serialize(&self.{idx}),\n"
                        ));
                    }
                    out.push_str("        ])\n");
                }
                Fields::Unit => out.push_str("        ::serde::Value::Null\n"),
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            {name}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vn}(__f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::serialize(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> =
                            (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<String> =
                            fs.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{0}\"), ::serde::Serialize::serialize({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

fn gen_named_field_reads(type_name: &str, fs: &[Field], obj: &str) -> String {
    let mut out = String::new();
    for f in fs {
        let fname = &f.name;
        if f.default {
            out.push_str(&format!(
                "            {fname}: match ::serde::Value::get_field({obj}, \"{fname}\") {{\n                Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n                None => ::std::default::Default::default(),\n            }},\n"
            ));
        } else {
            out.push_str(&format!(
                "            {fname}: match ::serde::Value::get_field({obj}, \"{fname}\") {{\n                Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n                None => return Err(::serde::Error::custom(\"missing field `{fname}` in {type_name}\")),\n            }},\n"
            ));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str(&format!(
                        "        let __obj = __value.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n        Ok({name} {{\n"
                    ));
                    out.push_str(&gen_named_field_reads(name, fs, "__obj"));
                    out.push_str("        })\n");
                }
                Fields::Tuple(1) => {
                    out.push_str(&format!(
                        "        Ok({name}(::serde::Deserialize::deserialize(__value)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "        let __arr = __value.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n        if __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n        Ok({name}(\n"
                    ));
                    for idx in 0..*n {
                        out.push_str(&format!(
                            "            ::serde::Deserialize::deserialize(&__arr[{idx}])?,\n"
                        ));
                    }
                    out.push_str("        ))\n");
                }
                Fields::Unit => out.push_str(&format!("        Ok({name})\n")),
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        match __value {{\n"
            ));
            // Unit variants arrive as plain strings.
            out.push_str("            ::serde::Value::String(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    out.push_str(&format!(
                        "                \"{0}\" => Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            out.push_str(&format!(
                "                __other => Err(::serde::Error::custom(&format!(\"unknown {name} variant `{{__other}}`\"))),\n            }},\n"
            ));
            // Data variants arrive as single-entry objects.
            out.push_str("            ::serde::Value::Object(__m) if __m.len() == 1 => {\n                let (__tag, __inner) = &__m[0];\n                match __tag.as_str() {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "                    \"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "                    \"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut reads = String::new();
                        for idx in 0..*n {
                            reads.push_str(&format!(
                                "::serde::Deserialize::deserialize(&__arr[{idx}])?, "
                            ));
                        }
                        out.push_str(&format!(
                            "                    \"{vn}\" => {{\n                        let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n                        if __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n                        Ok({name}::{vn}({reads}))\n                    }}\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        out.push_str(&format!(
                            "                    \"{vn}\" => {{\n                        let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n                        Ok({name}::{vn} {{\n"
                        ));
                        out.push_str(&gen_named_field_reads(name, fs, "__obj"));
                        out.push_str("                        })\n                    }\n");
                    }
                }
            }
            out.push_str(&format!(
                "                    __other => Err(::serde::Error::custom(&format!(\"unknown {name} variant `{{__other}}`\"))),\n                }}\n            }},\n            _ => Err(::serde::Error::custom(\"expected string or single-key object for enum {name}\")),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("vendored serde_derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("vendored serde_derive: generated invalid Rust")
}
