//! Vendored minimal stand-in for the `serde` crate (this build environment
//! has no crates.io access).
//!
//! Instead of serde's visitor architecture, this facade uses a concrete
//! [`Value`] data model: `Serialize` renders a type into a `Value`,
//! `Deserialize` reads it back. The `serde_json` shim then maps `Value`
//! to/from JSON text. The derive macros (re-exported from the vendored
//! `serde_derive`) cover the struct/enum shapes used in this workspace and
//! match real serde's externally-tagged JSON representation, so persisted
//! artifacts stay compatible with upstream serde if the real crates are
//! ever restored.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model: a JSON-shaped tree.
///
/// Object fields keep insertion order, which makes serialization
/// deterministic — the plan cache's content addressing relies on that.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a field in an object entry list (first match).
    pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64` for non-negative integral numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64` for integral numbers in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl AsRef<str>) -> Self {
        Error(msg.as_ref().to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a `Value` tree.
    fn serialize(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts from a `Value` tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] naming the first mismatch encountered.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(concat!("out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(concat!("out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::deserialize(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::custom("expected fixed-size array")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple array")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}
