//! Vendored minimal stand-in for the `criterion` benchmark harness
//! (offline build environment).
//!
//! Keeps the source-level API the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros and `black_box` — but with a
//! deliberately simple measurement loop: a short calibration pass picks an
//! iteration count that fits the configured measurement time, then the
//! median of a few batches is reported as ns/iter on stdout. No statistics
//! engine, no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Runs one measurement: calibrates an iteration count, then reports the
/// median batch time.
fn measure<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibration: one timed call to size the batches.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = samples[samples.len() / 2];
    println!(
        "{id:<40} {median:>14.1} ns/iter ({} samples x {iters} iters)",
        samples.len()
    );
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        measure(id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Compatibility no-op (upstream parses CLI flags here).
    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }
}

/// A named group sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        measure(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Closes the group (no-op; for source compatibility).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
