//! Vendored minimal stand-in for the `rand` crate (offline build
//! environment).
//!
//! Implements exactly the API surface this workspace uses: a seedable
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), `Rng::gen`,
//! `Rng::gen_range` over integer and float ranges, `Rng::gen_bool`, and
//! `seq::SliceRandom::shuffle`. Sequences differ from upstream `rand`'s
//! `SmallRng` — all workspace tests assert internal consistency per seed,
//! never golden sequences, so any high-quality deterministic PRNG is
//! admissible.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Uniform sampling of a `T` from its "standard" distribution
/// (`[0, 1)` for floats).
pub trait StandardSample {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly to produce a `T`.
///
/// `T` is a type parameter (not an associated type) so that float-literal
/// ranges infer their element type from the call site, matching upstream
/// `rand`'s `gen_range` inference behaviour.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling on `[0, span)` by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let z = rng.next_u64();
        if z < zone {
            return z % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = uniform_u64(rng, span);
                // Wrapping add in the unsigned domain handles negative starts.
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::standard(rng)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy; here, from the system clock
    /// (kept deterministic builds should always prefer `seed_from_u64`).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace treats `StdRng` and `SmallRng` identically.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience: a clock-seeded [`rngs::SmallRng`].
pub fn thread_rng() -> rngs::SmallRng {
    <rngs::SmallRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(-2.0f32..0.5);
            assert!((-2.0..0.5).contains(&g));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
