//! Vendored minimal stand-in for `serde_json` (offline build environment).
//!
//! Maps the vendored [`serde::Value`] data model to and from JSON text:
//! strict recursive-descent parsing (with a nesting-depth guard, since the
//! plan server feeds it bytes off a socket) and deterministic writing.
//! Floats are written with Rust's shortest-roundtrip formatting, so
//! `to_string` → `from_str` reproduces every finite `f64` bit-exactly —
//! the LUT/report serde roundtrip tests and the plan cache's
//! content-addressing both rely on that.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Maximum nesting depth accepted by the parser — and, symmetrically,
/// emitted by the writer. The writer enforcing the same bound means
/// `to_string` can never produce output that `from_str` would reject for
/// depth: before the guard, a 129-deep `Value` serialized fine into JSON
/// this very module could not read back (and unbounded recursion risked
/// a stack overflow on hostile trees).
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Real serde_json writes null for non-finite floats.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the number recognizably floating-point (serde_json prints 1.0,
    // not 1); this also preserves the Float/Int distinction on re-parse.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn depth_error() -> Error {
    Error::custom(format!(
        "JSON serialize error: nesting deeper than {MAX_DEPTH} levels; \
         the parser would reject the output"
    ))
}

fn write_value(v: &Value, out: &mut String, depth: usize) -> Result<()> {
    if depth > MAX_DEPTH {
        return Err(depth_error());
    }
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out, depth + 1)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out, depth + 1)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(v: &Value, indent: usize, out: &mut String) -> Result<()> {
    if indent > MAX_DEPTH {
        return Err(depth_error());
    }
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_value_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_value(other, out, indent)?,
    }
    Ok(())
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Fails only if the value nests deeper than the parser's `MAX_DEPTH`
/// guard — output that `from_str` could never accept back.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Fails only on over-deep nesting (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Fails only on over-deep nesting (see [`to_string`]).
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Converts a value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs a typed value from the [`Value`] data model.
///
/// # Errors
///
/// Returns an error naming the first shape mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::deserialize(value)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a valid &str, so decode
                    // the full character from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::String),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an error describing the first syntax problem (with byte offset).
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a typed value from JSON text.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::deserialize(&parse(s)?)
}

/// Deserializes a typed value from JSON bytes.
///
/// # Errors
///
/// Returns an error for non-UTF-8 input, malformed JSON or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(e.to_string()))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(from_str::<usize>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            1e-300,
            2.225e-308,
            12345.678901234567,
            f64::MAX,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn nested_containers() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.0,2.5],[]]");
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn options_and_tuples() {
        let v: Vec<Option<(f64, usize)>> = vec![Some((0.5, 3)), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[0.5,3],null]");
        let back: Vec<Option<(f64, usize)>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth guard");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }

    /// Documented divergence from bit-exact round-tripping: non-finite
    /// floats have no JSON representation, so the writer (like the real
    /// `serde_json`) emits `null` — and the value comes back as
    /// `Value::Null`, not a float. Callers that must round-trip floats
    /// exactly (the plan cache's content-addressing, the serve stats
    /// wire messages) are responsible for never producing NaN/inf;
    /// the serve crate pins that on its side.
    #[test]
    fn nonfinite_floats_collapse_to_null() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let json = to_string(&f).unwrap();
            assert_eq!(json, "null", "{f}");
            assert_eq!(parse(&json).unwrap(), Value::Null);
        }
        // -0.0 IS finite and must survive with its sign bit.
        let json = to_string(&-0.0f64).unwrap();
        assert_eq!(json, "-0.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }

    /// The writer refuses nesting the parser would refuse to read back:
    /// the deepest tree that parses also serializes, and one level past
    /// the bound fails in *both* directions instead of producing
    /// write-only JSON.
    #[test]
    fn writer_depth_guard_matches_parser() {
        let deepest = (0..128).fold(Value::Null, |v, _| Value::Array(vec![v]));
        let json = to_string(&deepest).unwrap();
        assert_eq!(parse(&json).unwrap(), deepest);
        assert!(to_string_pretty(&deepest).is_ok());

        let too_deep = Value::Array(vec![deepest]);
        assert!(to_string(&too_deep).is_err(), "compact writer depth guard");
        assert!(
            to_string_pretty(&too_deep).is_err(),
            "pretty writer depth guard"
        );
        let unreadable = "[".repeat(129) + "null" + &"]".repeat(129);
        assert!(parse(&unreadable).is_err(), "parser agrees at 129");
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let v: Vec<(f64, usize)> = vec![(1.5, 2), (3.0, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(f64, usize)> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
