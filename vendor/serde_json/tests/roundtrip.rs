//! `Value → to_string → from_str` round-trip property tests for the
//! vendored JSON shim, plus deterministic regressions for the corners
//! the serve wire protocol leans on: `u64` payloads above `i64::MAX`,
//! control-character escapes, nesting at the `MAX_DEPTH` boundary,
//! surrogate-pair (and lone-surrogate) `\u` escapes, and `-0.0`.
//!
//! Two canonicalization rules are inherent to the JSON data model and
//! are applied before comparing, never silently assumed elsewhere:
//! a `UInt` that fits `i64` re-parses as `Int` (the textual form is
//! identical), and non-finite floats have no JSON form at all — the
//! writer emits `null` (the generator below only produces finite
//! floats; the divergence has its own unit test in the crate).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::Value;
use serde_json::{from_str, parse, to_string, to_string_pretty};

/// Characters deliberately hostile to naive escaping: every escape
/// shorthand, raw control characters, DEL, multibyte BMP text, astral
/// (surrogate-pair territory) characters, and noncharacter code points.
const CHAR_POOL: &[char] = &[
    'a',
    'Z',
    '7',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{08}',
    '\u{0C}',
    '\u{00}',
    '\u{01}',
    '\u{1f}',
    '\u{7f}',
    'é',
    'ß',
    'あ',
    '\u{e000}',
    '\u{fffd}',
    '\u{ffff}',
    '😀',
    '\u{10ffff}',
];

fn random_string(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| CHAR_POOL[rng.gen_range(0..CHAR_POOL.len())])
        .collect()
}

/// A random finite float biased toward awkward bit patterns: denormals,
/// negative zero, huge magnitudes, and garden-variety fractions.
fn random_finite_f64(rng: &mut SmallRng) -> f64 {
    loop {
        let f = match rng.gen_range(0..4u32) {
            0 => f64::from_bits(rng.next_u64()),
            1 => -0.0,
            2 => f64::from_bits(rng.gen_range(1..1024u64)), // denormals
            _ => rng.gen_range(-1.0e6..1.0e6),
        };
        if f.is_finite() {
            return f;
        }
    }
}

fn random_value(rng: &mut SmallRng, depth: usize) -> Value {
    // Leaf probability rises with depth so trees stay bounded.
    if depth >= 5 || rng.gen_bool(0.55) {
        match rng.gen_range(0..6u32) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_bool(0.5)),
            2 => Value::Int(rng.gen_range(i64::MIN..i64::MAX)),
            3 => Value::UInt(rng.next_u64()),
            4 => Value::Float(random_finite_f64(rng)),
            _ => Value::String(random_string(rng)),
        }
    } else if rng.gen_bool(0.5) {
        let n = rng.gen_range(0..5usize);
        Value::Array((0..n).map(|_| random_value(rng, depth + 1)).collect())
    } else {
        let n = rng.gen_range(0..5usize);
        Value::Object(
            (0..n)
                .map(|_| (random_string(rng), random_value(rng, depth + 1)))
                .collect(),
        )
    }
}

/// What parsing must hand back for a given written value: `UInt`s that
/// fit `i64` become `Int` (their decimal text is indistinguishable).
fn canonicalize(v: Value) -> Value {
    match v {
        Value::UInt(u) => i64::try_from(u).map(Value::Int).unwrap_or(Value::UInt(u)),
        Value::Array(items) => Value::Array(items.into_iter().map(canonicalize).collect()),
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k, canonicalize(v)))
                .collect(),
        ),
        other => other,
    }
}

/// Structural equality with floats compared by bit pattern, so `-0.0`
/// vs `0.0` (equal under `PartialEq`) cannot mask a lost sign bit.
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Array(xs), Value::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bits_eq(x, y))
        }
        (Value::Object(xs), Value::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && bits_eq(va, vb))
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any generated tree survives `to_string` → `parse` up to the two
    /// documented canonicalization rules, bit-for-bit on floats.
    #[test]
    fn value_roundtrips_through_compact_text(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let value = random_value(&mut rng, 0);
        let json = to_string(&value).expect("bounded tree serializes");
        let back = parse(&json).unwrap_or_else(|e| panic!("reparse of {json}: {e:?}"));
        let expected = canonicalize(value);
        prop_assert!(bits_eq(&expected, &back), "{json}");
    }

    /// The pretty writer emits the same tree, just with whitespace.
    #[test]
    fn value_roundtrips_through_pretty_text(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5DEECE66D);
        let value = random_value(&mut rng, 0);
        let pretty = to_string_pretty(&value).expect("bounded tree serializes");
        let back = parse(&pretty).unwrap_or_else(|e| panic!("reparse of {pretty}: {e:?}"));
        prop_assert!(bits_eq(&canonicalize(value), &back), "{pretty}");
    }

    /// Every finite `f64` bit pattern round-trips exactly.
    #[test]
    fn finite_floats_roundtrip_bit_exact(bits in 0u64..u64::MAX) {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            let json = to_string(&f).expect("scalar serializes");
            let back: f64 = from_str(&json).expect("float reparses");
            prop_assert_eq!(f.to_bits(), back.to_bits(), "{}", json);
        }
    }

    /// Strings drawn from the hostile pool — control characters,
    /// quotes, backslashes, astral chars — survive escaping exactly.
    #[test]
    fn hostile_strings_roundtrip(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E3779B9);
        let s = random_string(&mut rng);
        let json = to_string(s.as_str()).expect("string serializes");
        let back: String = from_str(&json).expect("string reparses");
        prop_assert_eq!(&s, &back, "{}", json);
    }
}

#[test]
fn u64_above_i64_max_survives_as_uint() {
    for u in [i64::MAX as u64 + 1, u64::MAX, u64::MAX - 1] {
        let json = to_string(&Value::UInt(u)).expect("uint serializes");
        assert_eq!(json, u.to_string());
        assert_eq!(parse(&json).expect("uint reparses"), Value::UInt(u));
        let typed: u64 = from_str(&json).expect("typed u64 reparses");
        assert_eq!(typed, u);
    }
    // At or below i64::MAX the decimal text is owned by Int.
    let json = to_string(&Value::UInt(i64::MAX as u64)).expect("uint serializes");
    assert_eq!(parse(&json).expect("reparses"), Value::Int(i64::MAX));
}

#[test]
fn every_control_character_escapes_and_returns() {
    for b in 0u8..0x20 {
        let s = format!("x{}y", b as char);
        let json = to_string(s.as_str()).expect("string serializes");
        // The escaped form itself must contain no raw control bytes.
        assert!(
            json.bytes().all(|b| b >= 0x20),
            "raw control byte in {json:?}"
        );
        let back: String = from_str(&json).expect("string reparses");
        assert_eq!(s, back, "control char 0x{b:02x} via {json:?}");
    }
}

#[test]
fn surrogate_pair_escapes_decode_and_lone_halves_are_rejected() {
    // A surrogate pair decodes to one astral character…
    assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    // …which the writer then re-emits as raw UTF-8, still reparseable.
    let json = to_string("😀").expect("astral serializes");
    assert_eq!(from_str::<String>(&json).unwrap(), "😀");
    // Lone halves, reversed pairs, and truncated pairs are all errors —
    // accepting them would smuggle unpaired surrogates into a String.
    for bad in [
        "\"\\ud800\"",
        "\"\\udc00\"",
        "\"\\ud800x\"",
        "\"\\ud800\\u0041\"",
        "\"\\ude00\\ud83d\"",
        "\"\\ud8\"",
    ] {
        assert!(parse(bad).is_err(), "accepted {bad}");
    }
}

#[test]
fn depth_boundary_nesting_roundtrips_and_overflow_fails_closed() {
    // Exactly at MAX_DEPTH: a mixed array/object chain 128 levels deep
    // serializes and reparses identically.
    let mut v = Value::String("bottom".to_string());
    for i in 0..128 {
        v = if i % 2 == 0 {
            Value::Array(vec![v])
        } else {
            Value::Object(vec![("k".to_string(), v)])
        };
    }
    let json = to_string(&v).expect("128-deep serializes");
    assert_eq!(parse(&json).expect("128-deep reparses"), v);
    // One deeper fails on write — never emitting JSON the parser would
    // then reject (the old writer happily produced such orphans).
    let over = Value::Array(vec![v]);
    assert!(to_string(&over).is_err());
}

#[test]
fn negative_zero_keeps_its_sign_bit_in_nested_positions() {
    let v = Value::Object(vec![
        ("a".to_string(), Value::Float(-0.0)),
        ("b".to_string(), Value::Array(vec![Value::Float(0.0)])),
    ]);
    let json = to_string(&v).expect("serializes");
    assert_eq!(json, "{\"a\":-0.0,\"b\":[0.0]}");
    let back = parse(&json).expect("reparses");
    assert!(bits_eq(&v, &back), "sign bit lost in {json}");
}
