//! Vendored minimal stand-in for `proptest` (offline build environment).
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(..)]` header, integer-range
//! strategies (`lo..hi`), `collection::vec`, and `prop_assert!`. Cases are sampled with a
//! fixed-seed deterministic RNG, so failures reproduce; there is no
//! shrinking — the failing inputs are printed instead.

use std::ops::Range;

#[doc(hidden)]
pub use rand as __rand;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// Value type produced.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut __rand::rngs::SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut __rand::rngs::SmallRng) -> $t {
                use __rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut __rand::rngs::SmallRng) -> f64 {
        use __rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{__rand, Strategy};

    /// Length specification for [`vec()`]: an exact `usize` or a `lo..hi`
    /// range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut __rand::rngs::SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut __rand::rngs::SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut __rand::rngs::SmallRng) -> usize {
            use __rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy: each case draws a length from `len` and fills it
    /// with independent draws from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut __rand::rngs::SmallRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a property-level condition (panics with the case's inputs in the
/// surrounding harness output).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        0x9E3779B97F4A7C15 ^ stringify!($name).len() as u64,
                    );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!("case ", "{}", $(", ", stringify!($arg), " = {:?}"),+),
                        __case, $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(__panic) = __result {
                        eprintln!("proptest failure with {__inputs}");
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Declares property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}
